"""Closed-loop chain clients for benchmarks, examples, and fault tests.

The paper's replicated experiments drive YCSB operations through the
chain: writes enter at the head, reads hit the tail.  A closed-loop
client issues its next operation the moment the previous one completes,
so N clients model N application threads.

Hardening (the nemesis layer throws lossy links at the chain):

* every operation carries ``(client_id, request_id)`` so the head can
  deduplicate retries — a retransmitted request never re-executes a
  completed transaction;
* a per-operation timeout with capped exponential backoff resubmits
  operations whose reply was lost (e.g. the head failed over and its
  volatile client table died with it);
* a typed error reply (:class:`~repro.errors.ClusterDegraded`,
  :class:`~repro.errors.RequestTimeoutError`) is retried while attempts
  remain, then surfaced exactly once in :attr:`ChainClient.failed`;
* :func:`run_clients` raises :class:`~repro.errors.ClientStuckError`
  naming the stuck clients if the simulator drains with operations
  still unresolved, instead of silently returning ``done == False``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import (
    ClientStuckError,
    ReplicationError,
    RequestTimeoutError,
    StaleShardMapError,
)
from ..workloads.ycsb import INSERT, READ, RMW, SCAN, SCAN_LENGTH, UPDATE, Op
from .chain import ChainCluster, RetryPolicy


class ChainClient:
    """Feeds a deterministic operation stream through the cluster.

    ``retry=None`` inherits the cluster's policy;
    ``RetryPolicy.disabled()`` reproduces the old fire-and-forget client
    (which the nemesis corpus demonstrates gets stranded by one dropped
    reply).
    """

    def __init__(
        self,
        cluster: ChainCluster,
        client_id: str,
        ops: List[Op],
        retry: Optional[RetryPolicy] = None,
    ):
        self.cluster = cluster
        self.client_id = client_id
        self.ops = ops
        self.retry = retry if retry is not None else cluster.retry
        self._cursor = 0
        self._next_request = 0
        self.completed = 0
        self.retries = 0
        #: the client's cached shard-map version (None on a plain
        #: chain); refreshed on every typed stale-map redirect
        self.map_version = getattr(cluster, "map_version", None)
        #: stale-map redirects taken (each one refreshed the cache)
        self.map_refreshes = 0
        self.latencies_ns: List[float] = []
        #: (request_id, op, error) for operations that resolved with a
        #: typed error — each rejected operation appears exactly once
        self.failed: List[Tuple[int, Op, ReplicationError]] = []
        #: request ids whose chain-wide outcome is unknown: some attempt
        #: timed out (client- or head-side), so the write may have
        #: executed even though the final resolution was an error.  The
        #: nemesis durability oracle must not assume these are absent.
        self.unknown_rids: set = set()
        #: key -> value of the most recent *acknowledged* write per key,
        #: in completion order — the nemesis convergence oracle checks
        #: these against the tail
        self.acked_writes: Dict[Any, bytes] = {}

    def start(self) -> None:
        self._issue_next()

    # -- one operation ---------------------------------------------------------

    def _issue_next(self) -> None:
        if self._cursor >= len(self.ops):
            return
        op = self.ops[self._cursor]
        self._cursor += 1
        rid = self._next_request
        self._next_request += 1
        state = {"rid": rid, "op": op, "attempt": 0, "done": False, "timer": None}
        self._submit(state)

    def _route(self, key) -> ChainCluster:
        """Per-key submission target via the cluster's shard map.

        A stale cached map version gets a typed
        :class:`~repro.errors.StaleShardMapError` redirect: refresh the
        cache from the error (one retry's worth of work) and re-route —
        the second lookup is authoritative by construction.
        """
        try:
            return self.cluster.route(key, self.map_version)
        except StaleShardMapError as exc:
            self.map_refreshes += 1
            self.retries += 1
            self.map_version = exc.current_version
            return self.cluster.route(key, self.map_version)

    def _submit(self, state: dict) -> None:
        op = state["op"]
        rid = state["rid"]

        def on_reply(result, latency_ns, _s=state):
            self._on_reply(_s, result, latency_ns)

        target = self._route(op.key)
        if op.kind == READ:
            target.submit_read("get", (op.key,), on_reply)
        elif op.kind in (UPDATE, INSERT):
            target.submit_write(
                "put", (op.key, op.value), [op.key], on_reply,
                client_id=self.client_id, request_id=rid,
            )
        elif op.kind == RMW:
            target.submit_write(
                "rmw_const", (op.key, op.value), [op.key], on_reply,
                client_id=self.client_id, request_id=rid,
            )
        elif op.kind == SCAN:
            target.submit_read("scan", (op.key, SCAN_LENGTH), on_reply)
        else:
            raise ValueError(f"unsupported op kind {op.kind}")
        self._arm_timer(state)

    # -- timers + retries ------------------------------------------------------

    def _arm_timer(self, state: dict) -> None:
        if not self.retry.enabled:
            return
        self._cancel_timer(state)
        state["timer"] = self.cluster.sim.schedule(
            self.retry.timeout_for(state["attempt"]), self._on_timeout, state
        )

    @staticmethod
    def _cancel_timer(state: dict) -> None:
        if state["timer"] is not None:
            state["timer"].cancel()
            state["timer"] = None

    def _on_timeout(self, state: dict) -> None:
        state["timer"] = None
        if state["done"]:
            return
        # a client-side timeout means a previous attempt may still be in
        # flight somewhere in the chain: the outcome is no longer "never
        # happened" even if a later attempt is rejected
        self.unknown_rids.add(state["rid"])
        if state["attempt"] >= self.retry.max_retries:
            self._resolve(
                state,
                ReplicationError(
                    f"client {self.client_id} request {state['rid']} unresolved "
                    f"after {state['attempt']} retries"
                ),
                error=True,
            )
            return
        state["attempt"] += 1
        self.retries += 1
        # resubmit under the same (client_id, request_id): the head
        # absorbs it if the original is still in flight
        self._submit(state)

    def _on_reply(self, state: dict, result, latency_ns: float) -> None:
        if state["done"]:
            return  # a duplicate completion (original + retry): first wins
        if isinstance(result, ReplicationError):
            if isinstance(result, RequestTimeoutError):
                self.unknown_rids.add(state["rid"])
            if self.retry.enabled and state["attempt"] < self.retry.max_retries:
                # rejected or timed out at the head: back off and retry
                self._cancel_timer(state)
                state["attempt"] += 1
                self.retries += 1
                delay = self.retry.timeout_for(state["attempt"])
                self.cluster.sim.schedule(delay, self._resubmit_if_pending, state)
                return
            self._resolve(state, result, error=True)
            return
        self._resolve(state, result, error=False, latency_ns=latency_ns)

    def _resubmit_if_pending(self, state: dict) -> None:
        if not state["done"]:
            self._submit(state)

    def _resolve(self, state: dict, result, error: bool,
                 latency_ns: Optional[float] = None) -> None:
        state["done"] = True
        self._cancel_timer(state)
        op = state["op"]
        if error:
            self.failed.append((state["rid"], op, result))
        else:
            if latency_ns is not None:
                self.latencies_ns.append(latency_ns)
            if op.kind in (UPDATE, INSERT, RMW):
                self.acked_writes[op.key] = op.value
        self.completed += 1
        self._issue_next()

    @property
    def done(self) -> bool:
        return self.completed >= len(self.ops)


def run_clients(
    cluster: ChainCluster,
    streams: List[List[Op]],
    retry: Optional[RetryPolicy] = None,
    raise_on_stuck: bool = True,
) -> List[ChainClient]:
    """Start one closed-loop client per stream and run to completion.

    Raises :class:`~repro.errors.ClientStuckError` if the simulator
    drains with clients still waiting — an operation was lost and
    nothing will ever retry it (set ``raise_on_stuck=False`` to get the
    old silent behaviour back for inspection-style tests).
    """
    clients = [
        ChainClient(cluster, f"c{i}", ops, retry=retry)
        for i, ops in enumerate(streams)
    ]
    for client in clients:
        client.start()
    cluster.drain()
    stuck = [c for c in clients if not c.done]
    if stuck and raise_on_stuck:
        detail = ", ".join(
            f"{c.client_id} ({c.completed}/{len(c.ops)} ops)" for c in stuck
        )
        raise ClientStuckError(
            f"{len(stuck)} client(s) never completed: {detail}",
            client_ids=[c.client_id for c in stuck],
        )
    return clients
