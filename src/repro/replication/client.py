"""Closed-loop chain clients for benchmarks and examples.

The paper's replicated experiments drive YCSB operations through the
chain: writes enter at the head, reads hit the tail.  A closed-loop
client issues its next operation the moment the previous one completes,
so N clients model N application threads.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from ..workloads.ycsb import INSERT, READ, RMW, SCAN, SCAN_LENGTH, UPDATE, Op
from .chain import ChainCluster


class ChainClient:
    """Feeds a deterministic operation stream through the cluster."""

    def __init__(self, cluster: ChainCluster, client_id: str, ops: List[Op]):
        self.cluster = cluster
        self.client_id = client_id
        self.ops = ops
        self._cursor = 0
        self.completed = 0
        self.latencies_ns: List[float] = []

    def start(self) -> None:
        self._issue_next()

    def _issue_next(self) -> None:
        if self._cursor >= len(self.ops):
            return
        op = self.ops[self._cursor]
        self._cursor += 1
        if op.kind == READ:
            self.cluster.submit_read("get", (op.key,), self._on_done)
        elif op.kind in (UPDATE, INSERT):
            self.cluster.submit_write("put", (op.key, op.value), [op.key], self._on_done)
        elif op.kind == RMW:
            self.cluster.submit_write(
                "rmw_const", (op.key, op.value), [op.key], self._on_done
            )
        elif op.kind == SCAN:
            self.cluster.submit_read("scan", (op.key, SCAN_LENGTH), self._on_done)
        else:
            raise ValueError(f"unsupported op kind {op.kind}")

    def _on_done(self, _result, latency_ns: float) -> None:
        self.completed += 1
        self.latencies_ns.append(latency_ns)
        self._issue_next()

    @property
    def done(self) -> bool:
        return self.completed >= len(self.ops)


def run_clients(cluster: ChainCluster, streams: List[List[Op]]) -> List[ChainClient]:
    """Start one closed-loop client per stream and run to completion."""
    clients = [
        ChainClient(cluster, f"c{i}", ops) for i, ops in enumerate(streams)
    ]
    for client in clients:
        client.start()
    cluster.drain()
    return clients
