"""Chain repair: fail-stop handling, quick reboots, joins (§5.2–5.3).

These functions orchestrate the recovery protocols over a
:class:`~repro.replication.chain.ChainCluster`:

* **fail-stop** (§5.2) — the chain shrinks, the view bumps, neighbours
  re-forward in-flight transactions; a failed head is replaced by its
  successor, which first rolls incomplete items back from *its*
  successor and only then builds a local backup; a failed tail's
  predecessor completes the in-flight acknowledgments.
* **quick reboot** (§5.3, Figure 9) — the rebooted replica keeps its
  place: it identifies incomplete write ranges from its intent logs and
  repairs them from a neighbour (roll forward from the predecessor for
  non-head nodes, roll back from the local backup for the head), then
  replays whatever in-flight transactions it missed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import NVMError, ReplicationError
from ..nvm.device import CrashPolicy
from ..nvm.pool import PmemPool
from ..heap import PersistentHeap
from ..kvstore import KVStore
from ..sim.resources import FIFOServer
from .chain import KAMINO, ChainCluster
from .messages import TailAck, TxForward
from .node import ROLE_HEAD, ROLE_MID, ROLE_TAIL, ReplicaNode, engine_for


def _copy_ranges(dst: ReplicaNode, src: ReplicaNode, ranges: List[Tuple[int, int]]) -> int:
    """Overwrite ``dst``'s heap bytes with ``src``'s for each range."""
    copied = 0
    for offset, size in ranges:
        dst.write_heap_bytes(offset, src.read_heap_bytes(offset, size))
        copied += size
    return copied


def _reload_volatile(node: ReplicaNode) -> None:
    """Refresh allocator mirrors + KV handles after byte-level repair."""
    node.heap.allocator.open()
    node.kv = KVStore.open(node.heap)


def quick_reboot(
    cluster: ChainCluster,
    index: int,
    policy: CrashPolicy = CrashPolicy.RANDOM,
    survival: float = 0.5,
) -> int:
    """Crash + immediately recover the replica at ``index`` (Figure 9).

    Returns the number of bytes repaired from a neighbour/backup.
    The caller must ensure the chain is otherwise quiescent for the
    repair window (the head holds dependent transactions anyway).
    """
    node = cluster.chain[index]
    node.crash(policy, survival)
    node.reopen()
    # §5.3: the rebooted replica asks the membership manager to rejoin
    # with the view it believes is current; a removed replica must take
    # the join-as-new-tail path instead
    cluster.membership.rejoin_request(node.node_id, node.view_id)
    node.view_id = cluster.view_id
    repaired = 0
    if cluster.mode == KAMINO and node.role != ROLE_HEAD:
        # roll forward from the assigned predecessor (case 1 of §5.3)
        pred = cluster.predecessor(node)
        if pred is None:
            raise ReplicationError("non-head replica must have a predecessor")
        ranges = list(node.engine.incomplete_ranges)
        repaired = _copy_ranges(node, pred, ranges)
        node.engine.ack_repaired()
        _reload_volatile(node)
    else:
        # head (kamino: rolled back from its local backup during reopen;
        # traditional: undo logs restored everything) — case 2 of §5.3
        _reload_volatile(node)
    _replay_missed(cluster, node)
    return repaired


def _replay_missed(cluster: ChainCluster, node: ReplicaNode) -> None:
    """Replay in-flight transactions the replica missed while down.

    Replay ships each missed transaction's *byte-level write-set* from
    the predecessor rather than re-executing the procedure: the §5.3
    range repair may already have rolled fragments of later
    transactions forward (the predecessor is strictly newer, and its
    bytes for any shared range reflect its whole history), so the
    replica's heap is not guaranteed to be a state the procedure can
    re-execute against.  Copying the write-sets in order is idempotent
    and lands exactly on the predecessor's prefix.
    """
    pred = cluster.predecessor(node)
    if pred is None:
        return
    copied = False
    for seq in sorted(pred.inflight):
        _txid, msg = pred.inflight[seq]
        if msg.seq <= node.applied_seq:
            continue
        node.persist_to_input_queue(64)
        ranges = pred.applied_ranges.get(seq)
        if ranges is not None:
            _copy_ranges(node, pred, ranges)
            copied = True
        else:
            # predecessor no longer tracks the write-set (cleaned up):
            # fall back to re-execution, refreshing volatile mirrors
            # first if byte-level repair preceded it
            if copied:
                _reload_volatile(node)
                copied = False
            node.execute(msg.proc, msg.args)
        node.applied_seq = msg.seq
        node.inflight[msg.seq] = (msg.seq, msg)
        node.applied_ranges[msg.seq] = list(ranges) if ranges is not None else list(
            node.last_write_set
        )
    if copied:
        _reload_volatile(node)


def media_peer_fetch(cluster: ChainCluster, node: ReplicaNode):
    """Build a scrubber ``peer_repair`` callback for ``node``.

    Every replica formats its pool with the same creation sequence, so a
    device-absolute address names the same logical bytes on each of
    them; fetching a neighbour's durable line is replica state transfer
    at cache-line granularity — the last resort when both local copies
    of a line are gone.  The predecessor is tried first (its history is
    a superset, so its bytes are a roll-forward), then the successor (a
    roll-back, still better than data loss).  Peers that are crashed or
    whose own media faults on the line are skipped.
    """

    def fetch(abs_addr: int, size: int) -> Optional[bytes]:
        for peer in (cluster.predecessor(node), cluster.successor(node)):
            if peer is None or peer.device.crashed:
                continue
            try:
                return peer.device.durable_read(abs_addr, size)
            except NVMError:
                continue
        return None

    return fetch


def scrub_node(cluster: ChainCluster, node: ReplicaNode):
    """One scrub pass over ``node``'s pool with neighbour state transfer
    as the last-resort repair source; refreshes volatile mirrors if any
    bytes changed.  Returns the :class:`~repro.integrity.scrub.ScrubReport`."""
    from ..integrity.scrub import Scrubber

    report = Scrubber(
        node.device,
        pool=node.heap.region.pool,
        engine=node.engine,
        peer_repair=media_peer_fetch(cluster, node),
    ).scrub_once()
    if report.repaired or report.quarantined:
        _reload_volatile(node)
    return report


def _detach(cluster: ChainCluster, index: int):
    """Take the replica at ``index`` out of the topology (network +
    chain list) and return what the repair paths need to re-stitch."""
    node = cluster.chain[index]
    cluster.net.fail_node(node.node_id)
    cluster.net.unregister(node.node_id)
    was_head = node.role == ROLE_HEAD
    was_tail = node.role == ROLE_TAIL
    pred = cluster.predecessor(node)
    succ = cluster.successor(node)
    cluster.chain.pop(index)
    return node, was_head, was_tail, pred, succ


def _repair_chain(cluster: ChainCluster, was_head: bool, was_tail: bool,
                  pred: Optional[ReplicaNode], succ: Optional[ReplicaNode]) -> None:
    if was_head:
        _promote_new_head(cluster)
    elif was_tail:
        _promote_new_tail(cluster, pred)
    else:
        _bridge_mid_failure(cluster, pred, succ)


def fail_stop(cluster: ChainCluster, index: int) -> None:
    """Remove a fail-stopped replica and repair the chain (§5.2)."""
    if len(cluster.chain) <= 2 and cluster.mode == KAMINO:
        raise ReplicationError("kamino chain needs at least two replicas to repair")
    node, was_head, was_tail, pred, succ = _detach(cluster, index)
    cluster.membership.declare_failed(node.node_id)
    _repair_chain(cluster, was_head, was_tail, pred, succ)
    cluster._install_view()


def replace_node(
    cluster: ChainCluster,
    index: int,
    spare_id: Optional[str] = None,
    value_size: int = 128,
) -> ReplicaNode:
    """Automatic node replacement: fail-stop the replica at ``index``
    and splice a caught-up spare into the chain under a single view
    change (:meth:`MembershipManager.replace_failed`).

    The spare joins at the tail after state transfer from the (new)
    tail — the same byte-shipping path a joining replica uses — then the
    old tail's in-flight window is re-forwarded so nothing committed is
    stranded.  The chain keeps its f-target instead of shrinking."""
    if len(cluster.chain) <= 2 and cluster.mode == KAMINO:
        raise ReplicationError("kamino chain needs at least two replicas to repair")
    failed, was_head, was_tail, pred, succ = _detach(cluster, index)
    _repair_chain(cluster, was_head, was_tail, pred, succ)

    donor = cluster.tail
    spare_id = spare_id or f"{cluster.node_prefix}s{cluster.view_id}x{len(cluster.chain)}"
    spare = ReplicaNode(
        spare_id,
        cluster.mode,
        ROLE_TAIL,
        heap_mb=donor.heap.region.size >> 20,
        value_size=value_size,
        alpha=donor.alpha,
        model=donor.model,
        seed=len(cluster.chain) + cluster.view_id,
    )
    spare.load_heap_image(donor.heap_image())
    spare.kv = KVStore.open(spare.heap)
    spare.applied_seq = donor.applied_seq
    if donor.role == ROLE_TAIL:
        donor.role = ROLE_MID
    cluster.chain.append(spare)
    cluster.membership.replace_failed(failed.node_id, spare_id)
    cluster.net.register(spare_id, cluster._make_handler(spare))
    donor_group = cluster.net.group_of(donor.node_id)
    if donor_group is not None:
        cluster.net.assign_group(spare_id, donor_group)
    cluster._servers[spare_id] = cluster.runtime.resources.register(
        FIFOServer(spare_id)
    )
    cluster._install_view()
    # the donor's un-cleaned window rides down to the spare so completion
    # acks regenerate under the new view
    for seq in sorted(donor.inflight):
        _txid, msg = donor.inflight[seq]
        cluster.net.send(
            donor.node_id, spare_id,
            TxForward(cluster.view_id, msg.seq, msg.proc, msg.args),
        )
    return spare


def _promote_new_head(cluster: ChainCluster) -> None:
    """§5.2 head failure: the successor becomes head.

    The new head first rolls incomplete transactions back from *its*
    successor (case 3 of Figure 9 — the successor has strictly older
    state), then constructs a local backup and the conservative lock
    set; pending client state at the old head is lost with it (clients
    live on the head)."""
    new_head = cluster.chain[0]
    if cluster.mode == KAMINO and new_head.role != ROLE_HEAD:
        succ = cluster.successor(new_head)
        incomplete = list(getattr(new_head.engine, "incomplete_ranges", ()))
        # any still-running local transaction state is volatile; scan the
        # durable intent log state via a clean engine restart instead
        new_head.role = ROLE_HEAD
        pool = PmemPool.open(new_head.device)
        new_head.engine = engine_for(cluster.mode, ROLE_HEAD, new_head.alpha)
        if succ is not None and incomplete:
            _copy_ranges(new_head, succ, incomplete)
        new_head.heap = PersistentHeap.open(pool, new_head.engine)
        _reload_volatile(new_head)
    else:
        new_head.role = ROLE_HEAD
    # conservative lock reconstruction: quiesce by clearing client state
    # (clients live on the head, §5.1 — their pending requests die with
    # it and must be retried, which the dedup table makes idempotent)
    cluster._busy_keys.clear()
    cluster._inflight_writes.clear()
    cluster._admission_queue.clear()
    cluster._degraded_queue.clear()
    cluster._inflight_requests.clear()
    for timer in cluster._retx_events.values():
        timer.cancel()
    cluster._retx_events.clear()
    # resume sequence numbering above everything any survivor applied —
    # the new head itself holds the maximum (each replica's history is a
    # prefix of its predecessor's), and numbering from the tail instead
    # would let a fresh transaction collide with one the old head
    # forwarded but the tail never saw
    cluster._next_seq = max(node.applied_seq for node in cluster.chain) + 1


def _promote_new_tail(cluster: ChainCluster, new_tail: Optional[ReplicaNode]) -> None:
    """§5.2 tail failure: the predecessor is the new tail and sends the
    head completion acks for everything it forwarded but saw no
    clean-up ack for."""
    if new_tail is None:
        raise ReplicationError("tail failure left no predecessor")
    new_tail.role = ROLE_TAIL
    head = cluster.head
    for seq in sorted(new_tail.inflight):
        cluster.net.send(new_tail.node_id, head.node_id, TailAck(cluster.view_id, seq))


def _bridge_mid_failure(
    cluster: ChainCluster, pred: Optional[ReplicaNode], succ: Optional[ReplicaNode]
) -> None:
    """Mid failure: the predecessor re-forwards its in-flight window to
    its new successor under the new view."""
    if pred is None or succ is None:
        return
    for seq in sorted(pred.inflight):
        _txid, msg = pred.inflight[seq]
        fresh = TxForward(cluster.view_id, msg.seq, msg.proc, msg.args)
        cluster.net.send(pred.node_id, succ.node_id, fresh)


def join_new_replica(cluster: ChainCluster, heap_mb: int = 8, value_size: int = 128) -> ReplicaNode:
    """Grow the chain: a fresh replica joins as the tail after state
    transfer from the current tail (§5.2)."""
    old_tail = cluster.tail
    node_id = f"{cluster.node_prefix}r{cluster.view_id}x{len(cluster.chain)}"
    node = ReplicaNode(
        node_id,
        cluster.mode,
        ROLE_TAIL,
        heap_mb=old_tail.heap.region.size >> 20,
        value_size=value_size,
        alpha=old_tail.alpha,
        model=old_tail.model,
    )
    node.load_heap_image(old_tail.heap_image())
    node.kv = KVStore.open(node.heap)
    node.applied_seq = old_tail.applied_seq
    old_tail.role = ROLE_MID
    cluster.chain.append(node)
    cluster.membership.add_at_tail(node.node_id)
    cluster.net.register(node.node_id, cluster._make_handler(node))
    tail_group = cluster.net.group_of(old_tail.node_id)
    if tail_group is not None:
        cluster.net.assign_group(node.node_id, tail_group)
    cluster._servers[node.node_id] = cluster.runtime.resources.register(
        FIFOServer(node.node_id)
    )
    cluster._install_view()
    return node


def settle(cluster: ChainCluster, rounds: int = 6) -> None:
    """Re-forward stalled in-flight windows until the chain is quiet.

    An intervention can strand a window: a crashed replica's successor
    never saw a forward, or a tail ack died with the old view.  The
    hardened protocol's timeout ladder usually heals this on its own;
    this driver forces the same retransmissions *now* — each round
    re-sends every survivor's un-cleaned window downstream (the head's
    is rebuilt from its client table), re-acks from the applied tail,
    then drains.  ``applied_seq`` and the idempotent procedures make the
    duplicates harmless.  Used by the crash explorer and the nemesis
    runner to settle a cluster after fault injection stops.
    """
    for _ in range(rounds):
        cluster.drain()
        stalled = bool(cluster._inflight_writes) or any(
            node.inflight for node in cluster.chain
        )
        if not stalled:
            return
        head = cluster.head
        succ = cluster.successor(head)
        # unacked client writes: rebuild the head's forwards from the
        # client table (the head's volatile window dies with a reboot)
        for seq, op in sorted(cluster._inflight_writes.items()):
            msg = TxForward(cluster.view_id, seq, op.proc, op.args)
            if succ is None:
                cluster._on_tail_ack(TailAck(cluster.view_id, seq))
            else:
                cluster.net.send(head.node_id, succ.node_id, msg)
        # every survivor's un-cleaned window, the head's included (a
        # promoted head still owes its old downstream forwards)
        for node in cluster.chain:
            nxt = cluster.successor(node)
            if nxt is None:
                continue
            for seq in sorted(node.inflight):
                _txid, msg = node.inflight[seq]
                fresh = TxForward(cluster.view_id, msg.seq, msg.proc, msg.args)
                cluster.net.send(node.node_id, nxt.node_id, fresh)
        # an applied-but-unacked tail: regenerate the completion acks
        tail = cluster.tail
        for seq in sorted(cluster._inflight_writes):
            if tail.applied_seq >= seq:
                cluster.net.send(
                    tail.node_id, cluster.head.node_id,
                    TailAck(cluster.view_id, seq),
                )
    cluster.drain()
