"""Process-parallel fan-out with deterministic merge.

Every sweep in this repo — crash points, nemesis seeds, shard groups,
benchmark cells — is a bag of *independent* jobs: each one builds its
own simulated stack from picklable parameters, runs it, and returns a
picklable result.  :func:`fan_out` runs such a bag over a
``multiprocessing.Pool`` and returns the results **in job order**, so a
parallel sweep merges exactly like the serial one: the caller folds the
ordered result list and gets byte-identical reports for 1 or N workers
(the invariance the worker-count tests pin).

Rules the call sites follow:

* the job function must be **module-level** (picklable) and must not
  touch global mutable state — all inputs travel in the job tuple;
* results are merged by walking the ordered list, never by completion
  order (``Pool.map``, not ``imap_unordered``);
* ``workers <= 1`` short-circuits to a plain in-process loop — the
  same code path the merge logic is tested against.

Stats merging helpers live here too: :func:`merge_nvm_stats` /
:func:`merge_net_stats` fold per-worker counter snapshots into one
document in argument order, so a fanned sweep reports the same totals
as its serial twin.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

from .nvm.stats import NVMStats
from .sim.network import NetStats

T = TypeVar("T")
R = TypeVar("R")


def cpu_count() -> int:
    """Usable CPUs (what ``workers="auto"`` resolves to)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count knob: ``None``/``"auto"``/negative →
    one process per usable CPU; 0/1 → serial."""
    if workers is None or workers < 0:
        return cpu_count()
    return workers


def fan_out(
    fn: Callable[[T], R],
    jobs: Sequence[T],
    workers: int = 0,
) -> List[R]:
    """Run ``fn`` over ``jobs``, optionally on a process pool.

    Results come back in job order regardless of completion order, so
    the caller's merge is deterministic.  ``workers <= 1`` (or a single
    job) runs serially in-process — bit-identical results, no pool.
    """
    jobs = list(jobs)
    workers = resolve_workers(workers)
    if workers <= 1 or len(jobs) <= 1:
        return [fn(job) for job in jobs]
    with multiprocessing.Pool(min(workers, len(jobs))) as pool:
        return pool.map(fn, jobs)


def merge_nvm_stats(parts: Iterable[NVMStats]) -> NVMStats:
    """Fold device-counter snapshots from independent stacks into one.

    Addition is commutative, but the fold still walks ``parts`` in
    order so a merged report is reproducible from the ordered result
    list alone.
    """
    total = NVMStats()
    for part in parts:
        total.loads += part.loads
        total.load_bytes += part.load_bytes
        total.stores += part.stores
        total.store_bytes += part.store_bytes
        total.flushes += part.flushes
        total.flushed_lines += part.flushed_lines
        total.flush_bursts += part.flush_bursts
        total.fences += part.fences
        total.copies += part.copies
        total.copy_bytes += part.copy_bytes
        total.media_flips += part.media_flips
        total.media_dead += part.media_dead
        total.media_detected += part.media_detected
        total.media_repaired += part.media_repaired
    return total


def merge_net_stats(parts: Iterable[NetStats]) -> NetStats:
    """Fold transport-counter snapshots (including their per-group
    partitions) from independent networks into one."""
    total = NetStats()
    for part in parts:
        _add_net(total, part)
        for name, sub in part.groups.items():
            bucket = total.groups.get(name)
            if bucket is None:
                bucket = total.groups[name] = NetStats()
            _add_net(bucket, sub)
    return total


def _add_net(into: NetStats, part: NetStats) -> None:
    into.sent += part.sent
    into.delivered += part.delivered
    into.dropped_link += part.dropped_link
    into.dropped_node += part.dropped_node
    into.dropped_fault += part.dropped_fault
    into.corrupted += part.corrupted
    into.duplicated += part.duplicated
    into.reordered += part.reordered
