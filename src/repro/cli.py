"""Command-line interface: run the paper's experiments without writing code.

Subcommands::

    python -m repro engines
    python -m repro ycsb   --workload A --engines undo,kamino-simple --threads 2,4,8
    python -m repro tpcc   --engines undo,kamino-simple --ops 400
    python -m repro chain  --workload A --f 2 --clients 4
    python -m repro crash  --engine kamino-simple --policy random
    python -m repro check  --engine all --workloads pairs,kv --quick
    python -m repro nemesis --quick
    python -m repro nemesis --media --seeds 3
    python -m repro cluster --groups 2 --shards 2 --quick
    python -m repro scrub  --flips 8 --dead 2
    python -m repro bench  --quick --out BENCH.json --compare BENCH_PR2.json
    python -m repro contend --clients 1,2,4,8 --require-crossover 4
    python -m repro serve  --smoke
    python -m repro info   --engine kamino-dynamic --alpha 0.3

Each prints the same fixed-width tables the benchmark suite records.

Engine construction flags (``--alpha`` and friends) are not hard-coded
per subcommand: each engine's registered capabilities declare its
tunable options, and :func:`_engine_kwargs` collects whichever the
parsed arguments carry.
"""

from __future__ import annotations

import argparse
import statistics as st
import sys
from typing import List, Optional

from .bench import format_table, replay, trace_tpcc, trace_ycsb
from .nvm.inspect import format_report
from .nvm.latency import PROFILES
from .runtime.registry import find_registered, registered_engines


def _parse_list(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _pin_backend(args):
    """Pin the NVM byte-store backend a subcommand asked for.

    Returns the previous pin so callers can restore it (the CLI runs
    in-process under the tests).  ``None``/``"auto"`` leaves detection
    alone.
    """
    from .nvm import backend as nvm_backend

    prev = nvm_backend._default
    requested = getattr(args, "backend", None)
    if requested:
        nvm_backend.set_default_backend(requested)
    return prev


def _engine_kwargs(engine_name: str, args) -> dict:
    """Constructor kwargs for ``engine_name`` from parsed CLI arguments.

    The registry declares each engine's tunable options; any the parsed
    namespace actually carries are forwarded.  One helper instead of a
    per-subcommand ``if engine == ...`` ladder.
    """
    info = find_registered(engine_name)
    if info is None:
        return {}
    return {
        opt: getattr(args, opt)
        for opt in info.capabilities.options
        if getattr(args, opt, None) is not None
    }


def cmd_engines(args) -> int:
    rows = []
    for info in registered_engines().values():
        caps = info.capabilities
        flags = []
        if caps.copies_in_critical_path:
            flags.append("crit-copy")
        if caps.has_backup:
            flags.append("backup")
        if caps.locks_released_after_sync:
            flags.append("late-unlock")
        if not caps.recoverable:
            flags.append("unsafe")
        rows.append([
            info.name,
            ",".join(flags) or "-",
            ",".join(caps.options) or "-",
            caps.description,
        ])
    print(format_table(
        "registered atomicity engines",
        ["engine", "capabilities", "options", "description"],
        rows,
    ))
    return 0


def cmd_ycsb(args) -> int:
    engines = _parse_list(args.engines)
    threads = [int(t) for t in _parse_list(args.threads)]
    model = PROFILES[args.medium]
    rows = []
    for engine in engines:
        kwargs = _engine_kwargs(engine, args)
        records = trace_ycsb(
            engine, args.workload, nrecords=args.records, nops=args.ops,
            value_size=args.value_size, model=model, **kwargs,
        )
        for n in threads:
            r = replay(records, n, engine, args.workload, model=model)
            rows.append([
                engine, n, r.throughput_kops, r.mean_latency_us,
                r.percentile_latency_us(99),
            ])
    print(format_table(
        f"YCSB-{args.workload}: {args.records} records, {args.ops} ops, "
        f"{model.name} medium",
        ["engine", "threads", "K ops/s", "mean us", "p99 us"],
        rows,
    ))
    return 0


def cmd_tpcc(args) -> int:
    engines = _parse_list(args.engines)
    rows = []
    for engine in engines:
        records = trace_tpcc(engine, nops=args.ops)
        r = replay(records, args.threads, engine, "tpcc")
        rows.append([engine, r.throughput_kops, r.mean_latency_us])
    print(format_table(
        f"TPC-C-lite: {args.ops} transactions, {args.threads} threads",
        ["engine", "K tx/s", "mean us"],
        rows,
    ))
    return 0


def cmd_chain(args) -> int:
    from .replication import KAMINO, TRADITIONAL, ChainCluster, run_clients
    from .workloads import Op, UPDATE, YCSBWorkload

    rows = []
    for mode in (TRADITIONAL, KAMINO):
        cluster = ChainCluster(f=args.f, mode=mode, heap_mb=16, value_size=1024)
        load = [Op(UPDATE, k, bytes([k % 255 + 1]) * 64) for k in range(args.records)]
        run_clients(cluster, [load])
        cluster.write_latencies_ns.clear()
        workload = YCSBWorkload(args.workload, args.records, 1024, seed=1)
        streams = [list(workload.run_ops(args.ops)) for _ in range(args.clients)]
        run_clients(cluster, streams)
        cluster.assert_replicas_consistent()
        writes = cluster.write_latencies_ns
        rows.append([
            mode, len(cluster.chain),
            st.mean(writes) / 1e3 if writes else 0.0,
            st.mean(cluster.read_latencies_ns) / 1e3 if cluster.read_latencies_ns else 0.0,
            cluster.total_storage_bytes >> 20,
        ])
    print(format_table(
        f"Chain replication, f={args.f}, YCSB-{args.workload}, {args.clients} clients",
        ["mode", "replicas", "write us", "read us", "storage MiB"],
        rows,
    ))
    return 0


def cmd_crash(args) -> int:
    from .errors import DeviceCrashedError
    from .kvstore import KVStore
    from .nvm import CrashPolicy
    from .runtime.context import ExecutionContext
    from .tx import make_engine, reopen_after_crash

    policy = {
        "drop": CrashPolicy.DROP_ALL,
        "keep": CrashPolicy.KEEP_ALL,
        "random": CrashPolicy.RANDOM,
    }[args.policy]
    kwargs = _engine_kwargs(args.engine, args)
    ctx = ExecutionContext.create(
        args.engine, value_size=128, heap_mb=16, seed=args.seed, **kwargs
    )
    device, kv = ctx.device, ctx.kv
    committed = {}
    for k in range(100):
        kv.put(k, bytes([k]) * 16)
        committed[k] = bytes([k]) * 16
    kv.drain()
    device.schedule_crash(args.after, policy)
    survived = 0
    try:
        for k in range(100, 200):
            kv.put(k, bytes([k % 256]) * 16)
            survived = k
        kv.drain()
    except DeviceCrashedError:
        print(f"power failed at device op budget {args.after} "
              f"(~key {survived + 1} in flight)")
    device.cancel_scheduled_crash()
    if not device.crashed:
        device.crash(policy)

    def factory():
        return make_engine(args.engine, **kwargs)

    heap2, _engine, report = reopen_after_crash(device, factory)
    kv2 = KVStore.open(heap2)
    kv2.tree.check_invariants()
    ok = sum(1 for k, v in committed.items() if kv2.get(k)[: len(v)] == v)
    print(f"recovery: {report}")
    print(f"all {ok}/100 pre-crash records intact; B+Tree invariants hold")
    return 0


def cmd_check(args) -> int:
    """Systematic crash-consistency sweep (repro.check)."""
    from .check import (
        ChainCrashExplorer,
        CANNED_WORKLOADS,
        minimize_failure,
        repro_snippet,
        sweep_registry,
    )

    if args.quick:
        explore_kwargs = dict(max_points=16, random_samples=1, max_nested_points=3)
        chain_kwargs = dict(max_points=3, max_device_points=3)
    else:
        explore_kwargs = dict(
            max_points=args.max_points,
            random_samples=args.random_samples,
            max_nested_points=args.max_nested_points,
        )
        chain_kwargs = dict(max_points=12, max_device_points=8)
    explore_kwargs["nested"] = not args.no_nested
    explore_kwargs["workers"] = args.workers
    chain_kwargs["workers"] = args.workers
    if args.media != "off":
        explore_kwargs.update(
            media=args.media,
            corrupt_lines=args.corrupt_lines,
            tree=args.tree,
            stale_lines=args.stale_lines,
        )

    workloads = (
        sorted(CANNED_WORKLOADS)
        if args.workloads == "all"
        else _parse_list(args.workloads)
    )
    unknown = [w for w in workloads if w not in CANNED_WORKLOADS]
    if unknown:
        print(
            f"unknown workload(s) {', '.join(unknown)}; "
            f"choose from {', '.join(sorted(CANNED_WORKLOADS))}",
            file=sys.stderr,
        )
        return 2
    engines = None if args.engine == "all" else _parse_list(args.engine)

    progress = None
    if args.verbose:
        progress = lambda line: print(f"  .. {line}", file=sys.stderr)  # noqa: E731

    reports = sweep_registry(
        workloads=workloads, engines=engines, progress=progress, **explore_kwargs
    )
    failures = [f for r in reports for f in r.failures]
    for report in reports:
        print(report.summary())

    # the in-place chain replica (needs_chain_repair) can only be swept
    # inside a live chain: quick reboots, fail-stops, and device-op
    # crashes mid-propagation, through the same scenario machinery
    chain_failed = 0
    if not args.no_chain and (engines is None or "intent-only" in engines):
        for mode in ("kamino", "traditional"):
            chain_report = ChainCrashExplorer(mode=mode).explore(**chain_kwargs)
            print(chain_report.summary())
            chain_failed += len(chain_report.failures)
            for failure in chain_report.failures[:5]:
                print(f"  FAILURE: {failure}")

    for failure in failures[:5]:
        minimized = minimize_failure(failure)
        print(f"\nFAILURE: {minimized}")
        print(repro_snippet(minimized))
    if failures or chain_failed:
        print(
            f"\n{len(failures) + chain_failed} crash-consistency failure(s)",
            file=sys.stderr,
        )
        return 1
    total = sum(r.states_explored + r.nested_explored for r in reports)
    print(f"all oracles satisfied over {total} crash states")
    return 0


def cmd_nemesis(args) -> int:
    """Seeded fault-injection sweep over the replication chain."""
    from dataclasses import replace

    from .faults import (
        CORPUS,
        MEDIA_CORPUS,
        minimize,
        repro_snippet,
        run_scenario,
        scenario_by_name,
    )
    from .replication.chain import RetryPolicy

    if args.list:
        print(format_table(
            "nemesis scenario corpus",
            ["scenario", "actions", "media", "description"],
            [[s.name, len(s.actions), s.media, s.description[:60]] for s in CORPUS],
        ))
        return 0

    if args.scenarios:
        scenarios = []
        for name in _parse_list(args.scenarios):
            scenario = scenario_by_name(name)
            if scenario is None:
                print(f"unknown scenario '{name}'; see --list", file=sys.stderr)
                return 2
            scenarios.append(scenario)
    elif args.media:
        scenarios = list(MEDIA_CORPUS)
    else:
        scenarios = list(CORPUS)
    seeds = args.seeds
    if args.quick:
        if not args.media and not args.scenarios:
            quick_names = {"flaky_link", "partition_and_heal", "crash_and_replace",
                           "head_failover"}
            scenarios = [s for s in scenarios if s.name in quick_names] or scenarios[:4]
        seeds = min(seeds, 2)
    # --unhardened with --media demonstrates the *media* failure class:
    # same faults, detection disabled (retries stay on — they are not the
    # defence under test)
    if args.unhardened and args.media:
        scenarios = [replace(s, media="unprotected") for s in scenarios]
        retry = RetryPolicy()
    else:
        retry = RetryPolicy.disabled() if args.unhardened else RetryPolicy()

    rows, failures = [], []
    for scenario in scenarios:
        for seed in range(seeds):
            r = run_scenario(scenario, seed=seed, mode=args.mode, f=args.f,
                             retry=retry)
            rows.append([
                r.scenario, r.seed, f"{r.completed_ops}/{r.total_ops}",
                r.retransmissions, r.net.dropped if r.net else 0,
                "ok" if r.ok else f"FAIL({len(r.problems)})",
            ])
            if not r.ok:
                failures.append((scenario, seed, r))
    unhardened_note = ""
    if args.unhardened:
        unhardened_note = (
            ", UNPROTECTED (media detection disabled)" if args.media
            else ", UNHARDENED (retries disabled)"
        )
    print(format_table(
        f"nemesis sweep: {args.mode}, f={args.f}, {seeds} seed(s)"
        + unhardened_note,
        ["scenario", "seed", "ops", "retx", "dropped", "verdict"],
        rows,
    ))
    for _scenario, _seed, r in failures[:5]:
        for problem in r.problems[:3]:
            print(f"  {r.scenario} seed={r.seed}: {problem}")

    if args.unhardened:
        # the demonstration: the unhardened chain is SUPPOSED to fail;
        # minimize the first failure and print its replay program
        if not failures:
            print("unhardened configuration unexpectedly survived every "
                  "scenario", file=sys.stderr)
            return 1
        scenario, seed, _r = failures[0]
        small = minimize(scenario, seed, mode=args.mode, f=args.f, retry=retry)
        print(f"\nminimized failing repro ({small.name}, seed={seed}, "
              f"{small.n_clients} client(s) x {small.ops_per_client} op(s)):\n")
        print(repro_snippet(small, seed, mode=args.mode,
                            hardened=bool(args.media)))
        return 0
    if failures:
        print(f"\n{len(failures)} nemesis failure(s)", file=sys.stderr)
        return 1
    print(f"all {len(rows)} nemesis runs converged")
    return 0


def cmd_cluster(args) -> int:
    """Sharded-cluster demo + oracle suite.

    Three stages, each gating the exit code:

    1. a live demo — load a multi-group cluster, run YCSB clients while
       the hottest shard migrates to the least-loaded group, then check
       convergence and placement;
    2. the sharded nemesis corpus (rebalance under partition, coordinator
       power failures, hot-shard skew) across seeds;
    3. a sampled migration-window crash sweep (skippable).
    """
    from .check import MigrationCrashExplorer
    from .cluster import ShardedCluster
    from .faults import CLUSTER_CORPUS, run_scenario
    from .replication import run_clients
    from .workloads import Op, UPDATE, YCSBWorkload

    records = 48 if args.quick else args.records
    ops = 30 if args.quick else args.ops
    clients = 2 if args.quick else args.clients
    seeds = 1 if args.quick else args.seeds
    failed = 0

    # -- stage 1: live demo with a mid-run migration -------------------------
    cluster = ShardedCluster(
        groups=args.groups, shards_per_group=args.shards, f=args.f,
        heap_mb=4, value_size=256, seed=args.seed,
    )
    load = [Op(UPDATE, k, bytes([k % 255 + 1]) * 64) for k in range(records)]
    run_clients(cluster, [load])
    cluster.sim.schedule(150_000.0, lambda: cluster.migrate_shard("hottest"))
    workload = YCSBWorkload("A", records, 256, seed=args.seed + 1)
    streams = [list(workload.run_ops(ops)) for _ in range(clients)]
    run_clients(cluster, streams)
    cluster.drain()

    problems = []
    if cluster.active_migrations:
        problems.append(f"migration wedged: shards {cluster.active_migrations}")
    if cluster.migration_failures:
        problems.append("; ".join(cluster.migration_failures))
    try:
        cluster.assert_replicas_consistent()
        if not cluster.active_migrations:
            cluster.assert_placement_respected()
    except AssertionError as exc:
        problems.append(str(exc))

    rows = []
    for gid, group in enumerate(cluster.groups):
        shards = cluster.map.shards_of(gid)
        rows.append([
            f"g{gid}", ",".join(str(s) for s in shards),
            sum(cluster.shard_load.get(s, 0) for s in shards),
            sum(1 for _ in group.tail.kv.tree.items()),
            group.committed,
        ])
    print(format_table(
        f"cluster: {args.groups} groups x {args.shards} shards, f={args.f}, "
        f"map v{cluster.map_version}",
        ["group", "shards", "routed", "keys", "committed"],
        rows,
    ))
    if cluster.migration_reports:
        print(format_table(
            "online migrations",
            ["shard", "route", "copied", "skipped", "catchup", "parked",
             "purged", "phase", "ms"],
            [[m.shard, f"g{m.src_group}->g{m.dst_group}", m.copied_keys,
              m.skipped_keys, m.catchup_keys, m.parked_ops, m.purged_keys,
              m.phase, round(m.duration_ns / 1e6, 3)]
             for m in cluster.migration_reports],
        ))
    for problem in problems:
        print(f"  DEMO FAILURE: {problem}")
    failed += len(problems)

    # -- stage 2: the sharded nemesis corpus ---------------------------------
    rows = []
    for scenario in CLUSTER_CORPUS:
        for seed in range(seeds):
            r = run_scenario(scenario, seed=seed, mode=args.mode, f=args.f)
            rows.append([
                r.scenario, r.seed, f"{r.completed_ops}/{r.total_ops}",
                r.migrations, r.coordinator_crashes, r.map_version,
                "ok" if r.ok else f"FAIL({len(r.problems)})",
            ])
            if not r.ok:
                failed += 1
                for problem in r.problems[:3]:
                    print(f"  {r.scenario} seed={seed}: {problem}")
    print(format_table(
        f"sharded nemesis corpus: {args.mode}, {seeds} seed(s)",
        ["scenario", "seed", "ops", "migs", "coord-crash", "map", "verdict"],
        rows,
    ))

    # -- stage 3: migration-window crash sweep -------------------------------
    if not args.no_sweep:
        sweep = MigrationCrashExplorer(mode=args.mode).explore(
            max_points=2 if args.quick else args.sweep_points,
            reboots=not args.quick,
            workers=args.workers,
        )
        print(sweep.summary())
        for failure in sweep.failures[:5]:
            print(f"  SWEEP FAILURE: {failure}")
        failed += len(sweep.failures)

    if failed:
        print(f"\n{failed} cluster failure(s)", file=sys.stderr)
        return 1
    print("cluster demo, nemesis corpus, and migration sweep all converged")
    return 0


def _scrub_demo(args, tree_mode):
    """One media-fault demo run; returns ``(silent+typed counts…, tree
    stats)`` for :func:`cmd_scrub` to judge.  ``tree_mode`` is ``None``
    (checksum sidecar only) or an integrity-tree mode."""
    import random as _random

    from .errors import MediaError
    from .integrity import Scrubber
    from .runtime.context import ExecutionContext

    records = 64 if args.quick else args.records
    kwargs = _engine_kwargs(args.engine, args)
    ctx = ExecutionContext.create(
        args.engine, value_size=128, heap_mb=4 if args.quick else 16,
        seed=args.seed, backend=getattr(args, "backend", "") or None,
        **kwargs,
    )
    kv, device, heap = ctx.kv, ctx.device, ctx.heap
    expect = {}
    for k in range(records):
        value = bytes([(k * 7 + 3) % 256]) * 64
        kv.put(k, value)
        expect[k] = value
    kv.drain()

    media = device.attach_media(
        seed=args.seed, protect=not args.no_protect, tree=tree_mode,
    )

    def live_ranges():
        return [
            (heap.region.offset + off, size)
            for off, size in heap.allocator.live_ranges()
        ]

    snap = None
    if args.stale or tree_mode is not None:
        # a second update round through the *guarded* persist path: the
        # sidecar and tree now stream every line the workload touches —
        # and, for --stale, these are the writes the replay rolls back
        if args.stale:
            snap = media.snapshot_lines(live_ranges())
        for k in range(records):
            value = bytes([(k * 11 + 5) % 256]) * 64
            kv.put(k, value)
            expect[k] = value
        kv.drain()
    if args.stale and snap is not None:
        shift = 6  # CACHE_LINE == 64
        changed = [
            line for line, image in sorted(snap.items())
            if bytes(device._durable[line << shift: (line + 1) << shift])
            != image
        ]
        rng = _random.Random(args.seed ^ 0x5A1E)
        chosen = rng.sample(changed, min(args.stale, len(changed)))
        replayed = media.replay_stale(snap, chosen)
        print(f"replayed {len(replayed)} stale line(s), each with its "
              f"matching old CRC forged into the sidecar")
    live = live_ranges()
    media.inject_flips(args.flips, ranges=live)
    backup = heap.region.pool.regions.get("backup")
    if args.dead and backup is not None:
        media.kill_lines(args.dead, ranges=[(backup.offset, backup.size)])

    if media.protected:
        report = Scrubber(device, pool=heap.region.pool,
                          engine=ctx.engine).scrub_once()
        print(f"scrub: {report.summary()}")

    intact = typed = silent = 0
    for k, value in expect.items():
        try:
            got = kv.get(k)
        except MediaError as exc:
            typed += 1
            print(f"  key {k}: typed degrade ({type(exc).__name__})")
            continue
        except Exception as exc:
            # a corrupted pointer/header crashing the reader IS silent
            # corruption biting — there was no typed media error first
            silent += 1
            print(f"  key {k}: reader crashed on corrupt state "
                  f"({type(exc).__name__})")
            continue
        if got is not None and got[: len(value)] == value:
            intact += 1
        else:
            silent += 1
    stats = device.stats
    print(f"injected: {stats.media_flips} flips, {stats.media_dead} dead "
          f"lines, {stats.media_stale} stale replays")
    print(f"detected: {stats.media_detected}, repaired: {stats.media_repaired}")
    print(f"records: {intact}/{records} intact, {typed} typed errors, "
          f"{silent} silently corrupt")
    tree_stats = media.tree.stats() if media.tree is not None else None
    if tree_stats is not None:
        print(f"tree[{tree_mode}]: depth={tree_stats['depth']} "
              f"leaf_updates={tree_stats['leaf_updates']} "
              f"node_hashes={tree_stats['node_hashes']} "
              f"batches={tree_stats['batches']}")
    return records, intact, typed, silent, tree_stats


def cmd_scrub(args) -> int:
    """Media-fault demo: inject bit rot + dead lines, scrub, verify.

    With the checksum sidecar on (the default), every injected fault
    must end repaired, quarantined, or typed — silent corruption is a
    failure (exit 1).  With ``--no-protect`` the same faults go
    undetected and the verification pass counts the silently wrong
    records, demonstrating the failure class the scrubber closes.

    ``--stale N`` adds the adversarial consistent replay (old bytes +
    forged old CRC): checksum-only runs serve stale data silently
    (``--expect-silent`` turns that demonstration into the success
    criterion), while ``--tree`` runs detect it against the published
    Merkle root and repair from the backup mirror.  ``--tree-compare``
    runs both tree modes and reports the streamed mode's hashing
    savings.
    """
    if args.tree_compare:
        results = {}
        for mode in ("eager", "streamed"):
            print(f"--- tree mode: {mode} ---")
            records, intact, typed, silent, tstats = _scrub_demo(args, mode)
            if silent or typed or intact != records:
                print(f"tree[{mode}] run did not converge", file=sys.stderr)
                return 1
            results[mode] = tstats
        eager, streamed = results["eager"], results["streamed"]
        saved = eager["node_hashes"] - streamed["node_hashes"]
        pct = 100.0 * saved / max(1, eager["node_hashes"])
        print(f"\nstreamed vs eager: {streamed['node_hashes']} vs "
              f"{eager['node_hashes']} interior hashes "
              f"({pct:.1f}% fewer, {streamed['batches']} batches)")
        if streamed["node_hashes"] > eager["node_hashes"]:
            print("streamed mode hashed MORE than eager", file=sys.stderr)
            return 1
        return 0

    tree_mode = args.tree if args.tree != "off" else None
    if tree_mode is not None and args.no_protect:
        print("--tree requires the checksum sidecar (drop --no-protect)",
              file=sys.stderr)
        return 2
    records, intact, typed, silent, _tstats = _scrub_demo(args, tree_mode)
    if args.expect_silent:
        if silent == 0:
            print("expected silent corruption but every record verified; "
                  "the defence under test unexpectedly held", file=sys.stderr)
            return 1
        print("silent corruption demonstrated — the failure class the "
              "integrity tree exists to close")
        return 0
    if args.no_protect:
        if silent == 0:
            print("unprotected media unexpectedly served every record "
                  "correctly; raise --flips", file=sys.stderr)
            return 1
        print("unprotected media served silently corrupt data — the "
              "failure the checksum sidecar exists to catch")
        return 0
    if silent or typed:
        print(f"{silent + typed} record(s) not fully repaired", file=sys.stderr)
        return 1
    print("every injected fault repaired; all records verified intact")
    return 0


def cmd_bench(args) -> int:
    from .bench import wallclock

    names = _parse_list(args.names) if args.names else None
    doc = wallclock.run_benchmarks(
        names=names,
        quick=args.quick,
        workers=args.workers,
        with_naive=not args.no_naive,
        budget_s=args.budget,
        repeats=args.repeats,
        backend=args.backend or None,
    )
    backend = doc["metadata"]["backend"]
    rows = []
    for name, entry in sorted(doc["benchmarks"].items()):
        rows.append([
            name,
            entry["wall_s"],
            entry.get("naive_wall_s", "-"),
            entry.get("speedup_vs_naive", "-"),
            entry["txs"],
        ])
    print(format_table(
        f"wall-clock benchmarks ({'quick' if args.quick else 'full'} sizes, "
        f"{backend} backend)",
        ["benchmark", "wall s", "naive s", "speedup", "txs"],
        rows,
    ))
    if doc.get("skipped"):
        print(f"skipped (budget exhausted): {', '.join(doc['skipped'])}")
    if args.out:
        wallclock.save(doc, args.out)
        print(f"wrote {args.out}")
    if args.compare:
        problems = wallclock.regression_report(
            doc, wallclock.load(args.compare), tolerance=args.tolerance
        )
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.compare} (tolerance {args.tolerance:.0%})")
    return 0


def cmd_contend(args) -> int:
    """The contended multi-client zipfian battery (see bench.contention)."""
    from .bench.contention import run_contention_sweep
    from .nvm import backend as nvm_backend

    engines = _parse_list(args.engines)
    clients = [int(t) for t in _parse_list(args.clients)]
    model = PROFILES[args.medium]
    prev = _pin_backend(args)
    try:
        sweep = run_contention_sweep(
            engines=engines,
            client_counts=clients,
            workload_name=args.workload,
            nrecords=args.records,
            nops=args.ops,
            seed=args.seed,
            model=model,
            baseline=args.baseline,
            challenger=args.challenger,
            engine_kwargs={e: _engine_kwargs(e, args) for e in engines},
        )
    finally:
        nvm_backend.set_default_backend(prev)
    rows = []
    for c in sweep.cells:
        rows.append([
            c.engine,
            c.nclients,
            round(c.duration_ns / 1000, 1),
            round(c.throughput_kops, 2),
            round(c.mean_latency_ns / 1000, 2),
            c.dependent_waits,
            c.lock_stats.get("stripes", "-"),
        ])
    print(format_table(
        f"contended YCSB-{args.workload}: {args.records} hot records, "
        f"{args.ops} ops, {model.name} medium, zipfian",
        ["engine", "clients", "dur us", "K ops/s", "mean us", "dep-waits", "stripes"],
        rows,
    ))
    crossover = sweep.crossover_clients()
    max_clients = max(clients)
    speedup = sweep.speedup_at(max_clients)
    if crossover is None:
        print(f"no crossover: {sweep.challenger} never beats {sweep.baseline}")
    else:
        print(
            f"crossover at {crossover} clients; "
            f"{sweep.challenger} is {speedup:.3f}x {sweep.baseline} "
            f"at {max_clients} clients"
        )
    if args.require_crossover is not None:
        if crossover is None or crossover > args.require_crossover:
            print(
                f"FAIL: crossover {crossover} exceeds required "
                f"<= {args.require_crossover} clients",
                file=sys.stderr,
            )
            return 1
        print(f"ok: crossover <= {args.require_crossover} clients")
    return 0


def cmd_serve(args) -> int:
    """The serving front door: boot the asyncio server, or run the
    self-contained smoke gate (``--smoke``) CI uses.

    The smoke gate boots on an ephemeral port and drives the whole
    surface through a real socket: a pipelined burst, a durable
    procedure crashed mid-flight by a scheduled power failure of the
    procedure log (recovered *inside the request*), an explicit
    CRASH/resume cycle, exactly-once re-submission, admission control
    under a tripped breaker, and the METRICS endpoint.
    """
    import asyncio
    import json

    from .errors import AdmissionRejected
    from .serve import ReproServer, ServeClient

    server = ReproServer(
        host=args.host, port=args.port, groups=args.groups,
        shards_per_group=args.shards, f=args.f, seed=args.seed,
    )

    if not args.smoke:
        async def _forever():
            host, port = await server.start()
            print(f"repro serve: listening on {host}:{port} "
                  f"({args.groups} group(s) x {args.shards} shard(s), "
                  f"f={args.f})")
            await server.serve_forever()

        try:
            asyncio.run(_forever())
        except KeyboardInterrupt:
            print("repro serve: shutting down")
        return 0

    async def _smoke() -> int:
        problems: List[str] = []

        def check(cond: bool, label: str) -> None:
            status = "ok" if cond else "FAIL"
            print(f"  [{status}] {label}")
            if not cond:
                problems.append(label)

        host, port = await server.start()
        print(f"serve smoke: {host}:{port}")
        client = await ServeClient.connect(host, port)
        reply = await client.execute("PING")
        check(reply == ("simple", "PONG"), "PING round-trip")

        # pipelined burst: one write carries the whole batch
        burst = [["PUT", 100 + i, b"%019d" % (100 + i)] for i in range(8)]
        burst += [["GET", 100 + i] for i in range(8)]
        replies = await client.pipeline(burst)
        check(
            all(r == ("simple", "OK") for r in replies[:8])
            and all(
                int(replies[8 + i][1].rstrip(b"\x00")) == 100 + i
                for i in range(8)
            ),
            f"pipelined burst of {len(burst)} commands",
        )

        # durable procedure + exactly-once re-submission (a retried pid
        # surfaces as +RESUMED <stored result> on the wire)
        reply = await client.proc("incr", "smoke-incr", 100, 7)
        check(json.loads(reply[1]) == 107, "PROC incr")
        reply = await client.execute("PROC", "incr", "smoke-incr", 100, 7)
        check(
            reply[0] == "simple" and reply[1].startswith("RESUMED")
            and json.loads(reply[1].split(" ", 1)[1]) == 107,
            "re-submitted pid replays stored result (RESUMED)",
        )

        # kill the procedure log mid-procedure: the scheduled power
        # failure fires during the transfer's frame appends and the
        # server must recover + resume inside the request
        await client.put(200, b"%019d" % 100)
        await client.put(201, b"%019d" % 100)
        server.store.device.schedule_crash(20)
        reply = await client.proc("transfer", "smoke-xfer", 200, 201, 30)
        result = (json.loads(reply[1]) if reply[0] == "bulk"
                  else json.loads(reply[1].split(" ", 1)[1]))
        check(result == {"src": 70, "dst": 130},
              "durable procedure crashed mid-flight still answers")
        check(server.crashes_recovered >= 1,
              f"server recovered the log ({server.crashes_recovered} time(s))")
        src = int((await client.get(200)).rstrip(b"\x00"))
        dst = int((await client.get(201)).rstrip(b"\x00"))
        check((src, dst) == (70, 130),
              f"transfer applied exactly once (200={src}, 201={dst})")

        # explicit crash/resume cycle plus exactly-once re-submission
        reply = await client.execute("CRASH")
        check(reply[0] == "simple" and reply[1].startswith("RECOVERED"),
              f"CRASH -> {reply[1]}")
        reply = await client.execute("PROC", "transfer", "smoke-xfer",
                                     200, 201, 30)
        check(
            reply[0] == "simple" and reply[1].startswith("RESUMED"),
            "pid re-submitted after reboot replays, never re-executes",
        )

        # admission control: a tripped breaker sheds with RETRY-AFTER
        server.cluster.trip_breaker()
        try:
            await client.put(300, b"x")
            check(False, "tripped breaker sheds writes with RETRY-AFTER")
        except AdmissionRejected as exc:
            check(exc.retry_after_ns > 0,
                  f"tripped breaker sheds writes "
                  f"(retry after {exc.retry_after_ns:.0f}ns)")
        server.cluster.close_breaker()
        await client.put(300, b"x")
        check(True, "write readmitted after the breaker closed")

        metrics = json.loads(await client.metrics())
        check(
            metrics["admission"]["rejected_degraded"] >= 1
            and metrics["procedures"]["recoveries"] >= 2
            and "procedure_log_device" in metrics,
            "METRICS reports admission + recovery counters",
        )

        await client.execute("QUIT")
        await client.close()
        await server.stop()
        if problems:
            print(f"serve smoke: {len(problems)} FAILURE(S)")
            return 1
        print("serve smoke: all checks passed")
        return 0

    return asyncio.run(_smoke())


def cmd_info(args) -> int:
    from .runtime.context import ExecutionContext

    kwargs = _engine_kwargs(args.engine, args)
    ctx = ExecutionContext.create(
        args.engine, value_size=256, heap_mb=max(1, args.mb // 3), **kwargs
    )
    kv = ctx.kv
    for k in range(args.records):
        kv.put(k, bytes([k % 256]) * 100)
    kv.drain()
    print(format_report(ctx.heap))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kamino-Tx reproduction: run experiments from the command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("engines", help="list registered engines and capabilities")
    p.set_defaults(fn=cmd_engines)

    p = sub.add_parser("ycsb", help="YCSB throughput/latency comparison")
    p.add_argument("--workload", default="A", choices=list("ABCDEF"))
    p.add_argument("--engines", default="undo,kamino-simple",
                   help="comma-separated engine names")
    p.add_argument("--threads", default="4", help="comma-separated thread counts")
    p.add_argument("--records", type=int, default=500)
    p.add_argument("--ops", type=int, default=1000)
    p.add_argument("--value-size", type=int, default=1008)
    p.add_argument("--alpha", type=float, default=0.5)
    p.add_argument("--medium", default="nvdimm", choices=sorted(PROFILES))
    p.set_defaults(fn=cmd_ycsb)

    p = sub.add_parser("tpcc", help="TPC-C-lite comparison")
    p.add_argument("--engines", default="undo,kamino-simple")
    p.add_argument("--ops", type=int, default=300)
    p.add_argument("--threads", type=int, default=4)
    p.set_defaults(fn=cmd_tpcc)

    p = sub.add_parser("chain", help="replicated chain comparison")
    p.add_argument("--workload", default="A", choices=list("ABCDEF"))
    p.add_argument("--f", type=int, default=2, help="failures to tolerate")
    p.add_argument("--clients", type=int, default=4)
    p.add_argument("--records", type=int, default=200)
    p.add_argument("--ops", type=int, default=100, help="ops per client")
    p.set_defaults(fn=cmd_chain)

    p = sub.add_parser("crash", help="crash-injection + recovery demo")
    p.add_argument("--engine", default="kamino-simple")
    p.add_argument("--policy", default="random", choices=["drop", "keep", "random"])
    p.add_argument("--after", type=int, default=500, help="device ops until power fail")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--alpha", type=float, default=0.5)
    p.set_defaults(fn=cmd_crash)

    p = sub.add_parser(
        "check", help="systematic crash-consistency sweep with semantic oracles"
    )
    p.add_argument("--engine", default="all",
                   help="comma-separated engine names, or 'all' (registry sweep)")
    p.add_argument("--workloads", default="pairs",
                   help="comma-separated canned workloads, or 'all'")
    p.add_argument("--quick", action="store_true",
                   help="CI-sized sweep (sampled crash points)")
    p.add_argument("--max-points", type=int, default=None,
                   help="cap outer crash points per engine (default exhaustive)")
    p.add_argument("--random-samples", type=int, default=1,
                   help="RANDOM-policy torn-write lotteries per crash state")
    p.add_argument("--max-nested-points", type=int, default=4,
                   help="cap nested (crash-during-recovery) points per state")
    p.add_argument("--no-nested", action="store_true",
                   help="skip nested recovery crashes")
    p.add_argument("--no-chain", action="store_true",
                   help="skip the replication-chain intervention sweep")
    p.add_argument("--workers", type=int, default=0,
                   help="fan crash points over a process pool; 0 = serial, "
                   "-1 = one per CPU (verdicts are worker-count invariant)")
    p.add_argument("--backend", default="",
                   choices=["", "auto", "pure", "numpy"],
                   help="NVM byte-store backend (default: auto-detect)")
    p.add_argument("--media", default="off",
                   choices=["off", "protected", "unprotected"],
                   help="inject media corruption into every crash image "
                   "(protected = sidecar + scrub on recovery)")
    p.add_argument("--corrupt-lines", type=int, default=2,
                   help="random bit-flipped lines per crash image")
    p.add_argument("--tree", default="off",
                   choices=["off", "streamed", "eager"],
                   help="attach a persistent integrity tree (protected "
                   "media only)")
    p.add_argument("--stale-lines", type=int, default=0,
                   help="adversarially replay N changed lines (with "
                   "forged stale CRCs) into every crash image")
    p.add_argument("--verbose", action="store_true",
                   help="progress lines on stderr")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "nemesis", help="seeded fault injection (lossy links, partitions, "
        "crash/replace) with convergence oracles"
    )
    p.add_argument("--quick", action="store_true",
                   help="CI smoke: scenario subset, 2 seeds")
    p.add_argument("--scenarios", default="",
                   help="comma-separated scenario names (default: full corpus)")
    p.add_argument("--seeds", type=int, default=5, help="seeds per scenario")
    p.add_argument("--mode", default="kamino", choices=["kamino", "traditional"])
    p.add_argument("--f", type=int, default=2, help="failures to tolerate")
    p.add_argument("--unhardened", action="store_true",
                   help="disable the defence under test (retries, or media "
                   "protection with --media) and demonstrate the failure "
                   "(prints a minimized replayable repro)")
    p.add_argument("--media", action="store_true",
                   help="run the media-fault subset (bit rot, dead lines) "
                   "with scrub-and-repair")
    p.add_argument("--list", action="store_true", help="list the corpus")
    p.set_defaults(fn=cmd_nemesis)

    p = sub.add_parser(
        "cluster", help="sharded multi-group cluster: online-migration "
        "demo, sharded nemesis corpus, migration crash sweep"
    )
    p.add_argument("--quick", action="store_true",
                   help="CI smoke: small load, 1 seed, sampled sweep")
    p.add_argument("--groups", type=int, default=2)
    p.add_argument("--shards", type=int, default=2,
                   help="shards per group at bootstrap")
    p.add_argument("--f", type=int, default=2, help="failures to tolerate")
    p.add_argument("--records", type=int, default=128)
    p.add_argument("--ops", type=int, default=80, help="ops per client")
    p.add_argument("--clients", type=int, default=4)
    p.add_argument("--seeds", type=int, default=3, help="seeds per scenario")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--mode", default="kamino", choices=["kamino", "traditional"])
    p.add_argument("--no-sweep", action="store_true",
                   help="skip the migration-window crash sweep")
    p.add_argument("--sweep-points", type=int, default=6,
                   help="sampled event boundaries in the crash sweep")
    p.add_argument("--workers", type=int, default=0,
                   help="fan the migration crash sweep over a process pool; "
                   "0 = serial, -1 = one per CPU")
    p.add_argument("--backend", default="",
                   choices=["", "auto", "pure", "numpy"],
                   help="NVM byte-store backend (default: auto-detect)")
    p.set_defaults(fn=cmd_cluster)

    p = sub.add_parser(
        "scrub", help="media-fault demo: inject bit rot + dead lines, "
        "scrub-and-repair, verify every record"
    )
    p.add_argument("--engine", default="kamino-simple")
    p.add_argument("--quick", action="store_true",
                   help="CI smoke: small heap, 64 records")
    p.add_argument("--records", type=int, default=256)
    p.add_argument("--flips", type=int, default=8,
                   help="latent bit flips injected into live heap bytes")
    p.add_argument("--dead", type=int, default=2,
                   help="uncorrectable lines injected into the backup mirror")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-protect", action="store_true",
                   help="drop the checksum sidecar: same faults, no "
                   "detection (the demonstration)")
    p.add_argument("--tree", default="off",
                   choices=["off", "streamed", "eager"],
                   help="attach a persistent integrity tree over the pool "
                   "(detects stale-CRC replays the sidecar cannot)")
    p.add_argument("--stale", type=int, default=0,
                   help="adversarially replay N updated main-copy lines "
                   "with their old bytes AND old CRCs (consistent "
                   "corruption; only --tree catches it)")
    p.add_argument("--expect-silent", action="store_true",
                   help="success (exit 0) iff silent corruption is "
                   "demonstrated — the must-fail CI leg for "
                   "checksum-only protection under --stale")
    p.add_argument("--tree-compare", action="store_true",
                   help="run the demo under both tree modes and report "
                   "streamed hashing savings vs eager")
    p.add_argument("--backend", default="",
                   choices=["", "auto", "pure", "numpy"],
                   help="NVM byte-store backend (default: auto-detect)")
    p.add_argument("--alpha", type=float, default=0.5)
    p.set_defaults(fn=cmd_scrub)

    p = sub.add_parser("bench", help="wall-clock perf suite (BENCH_*.json trajectory)")
    p.add_argument("--quick", action="store_true", help="CI-sized runs")
    p.add_argument("--names", default="", help="comma-separated benchmark subset")
    p.add_argument("--out", default="", help="write the JSON document here")
    p.add_argument("--compare", default="",
                   help="baseline BENCH_*.json; exit 1 on regression")
    p.add_argument("--tolerance", type=float, default=0.25,
                   help="allowed fractional speedup drop vs baseline")
    p.add_argument("--budget", type=float, default=None,
                   help="wall-clock budget in seconds (serial mode)")
    p.add_argument("--workers", type=int, default=0,
                   help="process-pool width; 0 = serial")
    p.add_argument("--repeats", type=int, default=1,
                   help="best-of-N wall time per side (noise suppression)")
    p.add_argument("--no-naive", action="store_true",
                   help="skip the naive baseline (no speedups)")
    p.add_argument("--backend", default="",
                   choices=["", "auto", "pure", "numpy"],
                   help="NVM byte-store backend for the optimized side "
                   "(default: auto-detect; recorded in metadata)")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "contend",
        help="contended multi-client zipfian battery (crossover gate)",
    )
    p.add_argument("--workload", default="A", help="YCSB mix letter")
    p.add_argument("--engines", default="kamino-dynamic,kamino-finegrained")
    p.add_argument("--clients", default="1,2,4,8",
                   help="comma-separated simulated client counts")
    p.add_argument("--records", type=int, default=240,
                   help="hot key-space width (small => real collisions)")
    p.add_argument("--ops", type=int, default=720)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--medium", default="nvdimm", choices=sorted(PROFILES))
    p.add_argument("--backend", default="",
                   choices=["", "auto", "pure", "numpy"],
                   help="NVM byte-store backend (default: auto-detect)")
    p.add_argument("--alpha", type=float, default=0.5)
    p.add_argument("--stripes", type=int, default=16)
    p.add_argument("--baseline", default="kamino-dynamic")
    p.add_argument("--challenger", default="kamino-finegrained")
    p.add_argument("--require-crossover", type=int, default=None,
                   help="exit 1 unless the challenger beats the baseline "
                   "at this client count or fewer (CI gate)")
    p.set_defaults(fn=cmd_contend)

    p = sub.add_parser(
        "serve",
        help="asyncio serving front door over a sharded cluster",
        description="Boot the RESP-like TCP server fronting a "
        "ShardedCluster, or run the self-contained --smoke gate "
        "(pipelined burst, mid-flight procedure crash + resume, "
        "exactly-once assert, admission control, metrics).",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 picks an ephemeral one)")
    p.add_argument("--groups", type=int, default=2)
    p.add_argument("--shards", type=int, default=2, help="shards per group")
    p.add_argument("--f", type=int, default=1, help="failures to tolerate")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--smoke", action="store_true",
                   help="run the smoke gate against an ephemeral server "
                   "and exit (CI)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("info", help="inspect a pool/heap layout")
    p.add_argument("--engine", default="kamino-simple")
    p.add_argument("--mb", type=int, default=64, help="device size in MiB")
    p.add_argument("--records", type=int, default=200)
    p.add_argument("--alpha", type=float, default=0.5)
    p.set_defaults(fn=cmd_info)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from .nvm import backend as nvm_backend

    prev = _pin_backend(args)
    try:
        return args.fn(args)
    finally:
        nvm_backend.set_default_backend(prev)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
