"""Kamino-Tx reproduction: atomic in-place updates for simulated NVM.

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.nvm` — simulated NVM device, pools, latency models
* :mod:`repro.heap` — persistent objects + transactional allocator
* :mod:`repro.tx` — atomicity engines (Kamino-Tx and baselines)
* :mod:`repro.kvstore` — persistent B+Tree / KV store / list / hash table
* :mod:`repro.workloads` — YCSB, TPC-C-lite, synthetic workloads
* :mod:`repro.sim` — deterministic event simulation
* :mod:`repro.runtime` — execution contexts, clock, engine registry
* :mod:`repro.replication` — chain replication (traditional + Kamino)
* :mod:`repro.bench` — benchmark harness over the runtime layer
* :mod:`repro.integrity` — media-fault model, checksum sidecar, scrubber
"""

from .errors import (
    BothCopiesLostError,
    IntegrityError,
    MediaError,
    ReproError,
    UncorrectableMediaError,
)
from .integrity import ChecksumSidecar, MediaFaultModel, ScrubReport, Scrubber
from .heap import PersistentHeap, PersistentStruct
from .nvm import CrashPolicy, NVMDevice, PmemPool
from .runtime import (
    EngineCapabilities,
    ExecutionContext,
    SimClock,
    register_engine,
    registered_engines,
)
from .tx import (
    CoWEngine,
    NoLoggingEngine,
    UndoLogEngine,
    kamino_dynamic,
    kamino_simple,
    make_engine,
)

__version__ = "1.0.0"

__all__ = [
    "BothCopiesLostError",
    "ChecksumSidecar",
    "CoWEngine",
    "CrashPolicy",
    "EngineCapabilities",
    "ExecutionContext",
    "IntegrityError",
    "MediaError",
    "MediaFaultModel",
    "NVMDevice",
    "NoLoggingEngine",
    "PersistentHeap",
    "PersistentStruct",
    "PmemPool",
    "ReproError",
    "ScrubReport",
    "Scrubber",
    "SimClock",
    "UncorrectableMediaError",
    "UndoLogEngine",
    "__version__",
    "kamino_dynamic",
    "kamino_simple",
    "make_engine",
    "register_engine",
    "registered_engines",
]
