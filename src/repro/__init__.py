"""Kamino-Tx reproduction: atomic in-place updates for simulated NVM.

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.nvm` — simulated NVM device, pools, latency models
* :mod:`repro.heap` — persistent objects + transactional allocator
* :mod:`repro.tx` — atomicity engines (Kamino-Tx and baselines)
* :mod:`repro.kvstore` — persistent B+Tree / KV store / list / hash table
* :mod:`repro.workloads` — YCSB, TPC-C-lite, synthetic workloads
* :mod:`repro.sim` — deterministic event simulation
* :mod:`repro.runtime` — execution contexts, clock, engine registry
* :mod:`repro.replication` — chain replication (traditional + Kamino)
* :mod:`repro.cluster` — sharded multi-group cluster, online migration
* :mod:`repro.bench` — benchmark harness over the runtime layer
* :mod:`repro.integrity` — media-fault model, checksum sidecar, scrubber
"""

from .errors import (
    AdmissionRejected,
    BothCopiesLostError,
    ClusterConfigError,
    ClusterDegraded,
    IntegrityError,
    IntegrityTreeError,
    MediaError,
    ProcedureAborted,
    ProcedureError,
    ProcedureResumed,
    ProtocolError,
    ReproError,
    RootMismatchError,
    ServeError,
    ShardMigrationError,
    StaleShardMapError,
    UncorrectableMediaError,
)
from .cluster import (
    ClusterReport,
    MigrationReport,
    RangeRouter,
    ShardMap,
    ShardRouter,
)
from .integrity import (
    ChecksumSidecar,
    IntegrityTree,
    MediaFaultModel,
    ScrubReport,
    Scrubber,
)
from .heap import PersistentHeap, PersistentStruct
from .nvm import CrashPolicy, NVMDevice, PmemPool
from .runtime import (
    EngineCapabilities,
    ExecutionContext,
    SimClock,
    register_engine,
    registered_engines,
)
from .tx import (
    CoWEngine,
    NoLoggingEngine,
    UndoLogEngine,
    kamino_dynamic,
    kamino_simple,
    make_engine,
)

__version__ = "1.0.0"

# the heavy cluster/serve members stay lazy (see repro.cluster's
# docstring): importing repro must not drag in the simulator + NVM stack
_LAZY_CLUSTER = ("MigrationRecord", "PlacementService", "ShardMigration",
                 "ShardedCluster")
_LAZY_SERVE = ("AdmissionController", "DurableProcedure", "ProcedureEngine",
               "ProcedureStore", "ReproServer")


def __getattr__(name: str):
    if name in _LAZY_CLUSTER or name in _LAZY_SERVE:
        from importlib import import_module

        pkg = ".cluster" if name in _LAZY_CLUSTER else ".serve"
        value = getattr(import_module(pkg, __name__), name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "BothCopiesLostError",
    "ChecksumSidecar",
    "ClusterConfigError",
    "ClusterDegraded",
    "ClusterReport",
    "CoWEngine",
    "CrashPolicy",
    "DurableProcedure",
    "EngineCapabilities",
    "ExecutionContext",
    "IntegrityError",
    "IntegrityTree",
    "IntegrityTreeError",
    "MediaError",
    "MediaFaultModel",
    "MigrationRecord",
    "MigrationReport",
    "NVMDevice",
    "NoLoggingEngine",
    "PersistentHeap",
    "PersistentStruct",
    "PlacementService",
    "PmemPool",
    "ProcedureAborted",
    "ProcedureEngine",
    "ProcedureError",
    "ProcedureResumed",
    "ProcedureStore",
    "ProtocolError",
    "RangeRouter",
    "ReproError",
    "ReproServer",
    "RootMismatchError",
    "ScrubReport",
    "Scrubber",
    "ServeError",
    "ShardMap",
    "ShardMigration",
    "ShardMigrationError",
    "ShardRouter",
    "ShardedCluster",
    "SimClock",
    "StaleShardMapError",
    "UncorrectableMediaError",
    "UndoLogEngine",
    "__version__",
    "kamino_dynamic",
    "kamino_simple",
    "make_engine",
    "register_engine",
    "registered_engines",
]
