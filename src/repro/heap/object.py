"""Typed persistent object handles.

A :class:`PersistentStruct` subclass declares its layout once::

    class Node(PersistentStruct):
        fields = [
            ("key", Int64()),
            ("value", FixedStr(32)),
            ("next", PPtr()),
            ("prev", PPtr()),
        ]

Instances are lightweight *handles* — (heap, oid) pairs — not copies of
the data.  Attribute reads load bytes from simulated NVM; attribute
writes require an active transaction with a declared write intent on the
object, mirroring NVML's ``TX_ADD`` discipline that Kamino-Tx hooks.
"""

from __future__ import annotations

from typing import ClassVar, List, Optional, Tuple

from ..errors import SchemaError
from ..tx.base import TxState
from .layout import FieldType, PNULL
from .schema import GLOBAL_REGISTRY, FieldInfo, StructSchema

#: Bytes of per-object header: type_id u32, data_size u32, reserved u64.
OBJ_HEADER_SIZE = 16


class _FieldDescriptor:
    """Routes ``obj.field`` loads/stores through the owning heap."""

    __slots__ = ("info", "_unpack", "_pack", "_offset", "_size")

    def __init__(self, info: FieldInfo):
        self.info = info
        # bound once: the codec and layout never change after schema
        # creation, and every attribute saved here is one fewer lookup
        # on the hottest path in the repo (obj.field loads)
        self._unpack = info.ftype.unpack
        self._pack = info.ftype.pack
        self._offset = info.offset
        self._size = info.ftype.size

    def __get__(self, obj: Optional["PersistentStruct"], owner=None):
        if obj is None:
            return self
        # inlined PersistentHeap.read_object_field: same lock discipline
        # and device traffic, minus the dispatch frames (see that method
        # for the readable form — the two must stay behaviourally equal)
        heap = obj._heap
        tx = getattr(heap._tls, "tx", None)
        if tx is not None and tx.state is TxState.ACTIVE:
            block = obj._oid - OBJ_HEADER_SIZE
            if block not in tx.read_set and block not in tx.write_set:
                heap._on_read(tx, block, heap.allocator.block_size_of(block))
        else:
            tx = None
        offset = obj._oid + self._offset
        size = self._size
        if heap._translates:
            dest = heap.engine.translate_read(tx, offset, size)
            if dest is not None:
                region, off = dest
                return self._unpack(region.read(off, size))
        if offset + size <= heap._heap_size:
            return self._unpack(heap._dev_read(heap._heap_off + offset, size))
        return self._unpack(heap.region.read(offset, size))

    def __set__(self, obj: "PersistentStruct", value) -> None:
        obj._heap.write_object_field(obj, self.info, self._pack(value))


class PersistentStructMeta(type):
    """Builds the schema and installs field descriptors at class creation."""

    def __new__(mcls, name, bases, namespace):
        fields = namespace.get("fields")
        cls = super().__new__(mcls, name, bases, namespace)
        if fields:
            schema = StructSchema(name, fields)
            cls._schema = schema
            for info in schema.fields:
                setattr(cls, info.name, _FieldDescriptor(info))
            GLOBAL_REGISTRY.register(schema, cls)
        return cls


class PersistentStruct(metaclass=PersistentStructMeta):
    """Base class for typed persistent objects; see module docstring."""

    #: subclasses set this to a list of (name, FieldType) pairs
    fields: ClassVar[List[Tuple[str, FieldType]]] = []
    _schema: ClassVar[Optional[StructSchema]] = None

    __slots__ = ("_heap", "_oid")

    def __init__(self, heap, oid: int):
        if type(self)._schema is None:
            raise SchemaError(f"{type(self).__name__} declares no fields")
        if oid == PNULL:
            raise SchemaError("cannot create a handle to the null pointer")
        object.__setattr__(self, "_heap", heap)
        object.__setattr__(self, "_oid", oid)

    # -- identity -------------------------------------------------------------

    @property
    def oid(self) -> int:
        """Persistent object id: the heap offset of the object's data."""
        return self._oid

    @property
    def block_offset(self) -> int:
        """Offset of the allocation block (header precedes the data)."""
        return self._oid - OBJ_HEADER_SIZE

    @property
    def schema(self) -> StructSchema:
        return type(self)._schema

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PersistentStruct)
            and self._oid == other._oid
            and self._heap is other._heap
        )

    def __hash__(self) -> int:
        return hash((id(self._heap), self._oid))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} oid={self._oid:#x}>"

    # -- convenience ----------------------------------------------------------

    def tx_add(self) -> None:
        """Declare a write intent for this whole object (NVML TX_ADD)."""
        self._heap.tx_add(self)

    def fields_dict(self) -> dict:
        """Snapshot all fields as a plain dict (reads each field once)."""
        return {info.name: getattr(self, info.name) for info in self.schema.fields}
