"""Persistent heap manager: typed objects, allocator, NVML-style API."""

from .alloc import MAX_BLOCK, MIN_BLOCK, SIZE_CLASSES, SlabAllocator, class_for
from .heap import HEAP_REGION, PersistentHeap
from .layout import (
    PNULL,
    Array,
    Bytes,
    FieldType,
    FixedStr,
    Float64,
    Int32,
    Int64,
    PPtr,
    UInt64,
)
from .object import OBJ_HEADER_SIZE, PersistentStruct
from .schema import GLOBAL_REGISTRY, FieldInfo, SchemaRegistry, StructSchema

__all__ = [
    "Array",
    "Bytes",
    "FieldInfo",
    "FieldType",
    "FixedStr",
    "Float64",
    "GLOBAL_REGISTRY",
    "HEAP_REGION",
    "Int32",
    "Int64",
    "MAX_BLOCK",
    "MIN_BLOCK",
    "OBJ_HEADER_SIZE",
    "PNULL",
    "PPtr",
    "PersistentHeap",
    "PersistentStruct",
    "SIZE_CLASSES",
    "SchemaRegistry",
    "SlabAllocator",
    "StructSchema",
    "UInt64",
    "class_for",
]
