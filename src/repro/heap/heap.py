"""The persistent heap facade: objects + allocator + atomicity engine.

This is the component marked "persistent heap manager" in the paper's
Figure 3.  It owns the heap region, routes every persistent store through
the active :class:`~repro.tx.base.AtomicityEngine`, and enforces the
NVML-style programming discipline: writes only inside a transaction, and
only to ranges with a declared write intent.
"""

from __future__ import annotations

import struct
import threading
from typing import Optional, Type, TypeVar

from ..errors import (
    DeviceCrashedError,
    InvalidPointerError,
    NoActiveTransactionError,
    SchemaError,
    WriteIntentError,
)
from ..nvm.device import NVMDevice
from ..nvm.pool import PmemPool, PmemRegion
from ..tx.base import AtomicityEngine, IntentKind, Transaction, TxState
from .alloc import SlabAllocator, class_for
from .layout import PNULL
from .object import OBJ_HEADER_SIZE, PersistentStruct
from .schema import GLOBAL_REGISTRY, FieldInfo

T = TypeVar("T", bound=PersistentStruct)

HEAP_REGION = "heap"

_OBJ_HDR_FMT = "<IIQ"  # type_id, data_size, reserved
_OBJ_HDR = struct.Struct(_OBJ_HDR_FMT)


class _TxScope:
    """``with heap.transaction():`` — a hand-rolled context manager.

    Replaces the previous ``@contextmanager`` generator: same semantics
    (commit on success, abort on exception, crash propagation without an
    abort), but without the generator frame and throw() machinery that
    showed up in profiles — this wraps every transaction in the repo.
    """

    __slots__ = ("heap", "tx")

    def __init__(self, heap: "PersistentHeap"):
        self.heap = heap

    def __enter__(self) -> Transaction:
        tx = self.heap.begin()
        self.tx = tx
        return tx

    def __exit__(self, exc_type, exc, tb) -> bool:
        tx = self.tx
        if exc_type is None:
            if tx.state is TxState.ACTIVE:
                tx.commit()
        elif issubclass(exc_type, DeviceCrashedError):
            # a simulated power failure is not an abort: the device
            # refuses further writes and every volatile structure dies
            # with the process, so just mark the transaction dead and
            # let the crash propagate (recovery happens at reopen)
            tx.state = TxState.ABORTED
        elif tx.state is TxState.ACTIVE:
            tx.depth = 1  # an exception unwinds every nesting level
            tx.abort()
        return False


class PersistentHeap:
    """A transactional object heap on one pool, bound to one engine.

    Use :meth:`create` for a fresh pool and :meth:`open` after a restart
    (the open path runs the engine's crash recovery).
    """

    def __init__(self, pool: PmemPool, engine: AtomicityEngine, region: PmemRegion):
        self.pool = pool
        self.engine = engine
        self.region = region
        self.allocator = SlabAllocator(region, writer=self)
        self._tls = threading.local()
        # hot-path bindings, resolved once per heap: field reads are the
        # single hottest call chain in the repo, so the per-call property
        # and dispatch layers (current_tx, region.read, engine attribute
        # walks) are flattened here.  All of these are fixed for the
        # heap's lifetime: the engine never changes after construction,
        # ``translates_reads`` is a class attribute, and the region's
        # offset/size and the device binding are set before first use.
        # Device traffic is bit-identical — only python frames are cut.
        self._dev_read = pool.device.read
        self._heap_off = region.offset
        self._heap_size = region.size
        self._translates = engine.translates_reads
        self._on_read = engine.on_read

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(
        cls,
        pool: PmemPool,
        engine: AtomicityEngine,
        heap_size: Optional[int] = None,
        chunk_size: int = 64 * 1024,
    ) -> "PersistentHeap":
        """Format a heap on ``pool``; ``heap_size`` defaults to the space
        left after the engine reserves its own regions is *not* known yet,
        so by default the heap takes half the pool (Kamino-Simple needs an
        equal-sized backup)."""
        if heap_size is None:
            heap_size = pool.free_bytes // 2 - 4096
        region = pool.create_region(HEAP_REGION, heap_size)
        heap = cls(pool, engine, region)
        heap.allocator = SlabAllocator(region, writer=heap, chunk_size=chunk_size)
        heap.allocator.format()
        engine.attach(pool, region)
        engine.register_free_handler(heap._apply_free)
        return heap

    @classmethod
    def open(cls, pool: PmemPool, engine: AtomicityEngine) -> "PersistentHeap":
        """Reopen after restart: attach, recover, rebuild volatile state."""
        region = pool.region(HEAP_REGION)
        heap = cls(pool, engine, region)
        engine.attach(pool, region)
        engine.register_free_handler(heap._apply_free)
        engine.last_recovery_report = engine.recover()
        heap.allocator.open()
        return heap

    def _apply_free(self, tx: Transaction, block_off: int, size: int) -> None:
        self.allocator.apply_free(tx, block_off, size)

    # -- transactions ----------------------------------------------------------

    @property
    def current_tx(self) -> Optional[Transaction]:
        tx = getattr(self._tls, "tx", None)
        if tx is not None and tx.state is not TxState.ACTIVE:
            return None
        return tx

    def begin(self) -> Transaction:
        """Begin (or flat-nest into) a transaction on this thread."""
        tx = getattr(self._tls, "tx", None)
        if tx is not None and tx.state is TxState.ACTIVE:
            tx.depth += 1
            return tx
        tx = self.engine.begin()
        self._tls.tx = tx
        return tx

    def transaction(self) -> _TxScope:
        """``with heap.transaction() as tx:`` — commit on success, abort
        on any exception (NVML's TX_BEGIN/TX_END block)."""
        return _TxScope(self)

    def _require_tx(self) -> Transaction:
        tx = getattr(self._tls, "tx", None)
        if tx is None or tx.state is not TxState.ACTIVE:
            raise NoActiveTransactionError("operation requires an active transaction")
        return tx


    # -- translated data path ----------------------------------------------------

    def read_bytes(self, offset: int, size: int) -> bytes:
        """Load heap bytes, honouring the engine's read translation
        (copy-on-write transactions must observe their own shadows)."""
        if self._translates:
            dest = self.engine.translate_read(self.current_tx, offset, size)
            if dest is not None:
                region, off = dest
                return region.read(off, size)
        if 0 <= offset and offset + size <= self._heap_size:
            return self._dev_read(self._heap_off + offset, size)
        return self.region.read(offset, size)

    # -- allocation ---------------------------------------------------------------

    def alloc(self, struct_cls: Type[T]) -> T:
        """Allocate and zero-initialise a typed object (TX_ZALLOC)."""
        schema = struct_cls._schema
        if schema is None:
            raise SchemaError(f"{struct_cls.__name__} declares no fields")
        tx = self._require_tx()
        block = self.allocator.alloc(tx, OBJ_HEADER_SIZE + schema.size)
        header = _OBJ_HDR.pack(schema.type_id, schema.size, 0)
        self.tx_raw_write(tx, block, header, declared=True)
        return struct_cls(self, block + OBJ_HEADER_SIZE)

    def alloc_blob(self, nbytes: int) -> int:
        """Allocate an untyped blob; returns its oid (data offset)."""
        if nbytes <= 0:
            raise ValueError("blob size must be positive")
        tx = self._require_tx()
        block = self.allocator.alloc(tx, OBJ_HEADER_SIZE + nbytes)
        header = _OBJ_HDR.pack(0, nbytes, 0)
        self.tx_raw_write(tx, block, header, declared=True)
        return block + OBJ_HEADER_SIZE

    def free(self, obj_or_oid) -> None:
        """Transactionally deallocate an object (TX_FREE, applied at commit)."""
        oid = obj_or_oid.oid if isinstance(obj_or_oid, PersistentStruct) else obj_or_oid
        tx = self._require_tx()
        self.allocator.defer_free(tx, oid - OBJ_HEADER_SIZE)

    # -- object access ---------------------------------------------------------------

    def object_header(self, oid: int) -> tuple:
        """(type_id, data_size) of the object at ``oid``."""
        type_id, size, _ = _OBJ_HDR.unpack(
            self.read_bytes(oid - OBJ_HEADER_SIZE, OBJ_HEADER_SIZE)
        )
        return type_id, size

    def deref(self, oid: int, struct_cls: Optional[Type[T]] = None):
        """Resurrect a handle from a persistent pointer value.

        Returns ``None`` for ``PNULL``.  With ``struct_cls`` the header's
        type id is checked against it; without, the registry decides.
        """
        if oid == PNULL:
            return None
        type_id, _size = self.object_header(oid)
        if struct_cls is not None:
            if struct_cls._schema is None or type_id != struct_cls._schema.type_id:
                raise InvalidPointerError(
                    f"object at {oid:#x} has type id {type_id:#x}, "
                    f"not {struct_cls.__name__}"
                )
            return struct_cls(self, oid)
        _schema, cls2 = GLOBAL_REGISTRY.lookup(type_id)
        return cls2(self, oid)

    def tx_add(self, obj: PersistentStruct) -> None:
        """Declare a write intent covering the whole object (TX_ADD)."""
        tx = self._require_tx()
        block = obj.block_offset
        size = self.allocator.block_size_of(block)
        if not tx.has_intent(block):
            tx.add(block, size, IntentKind.WRITE)

    def read_object_field(self, obj: PersistentStruct, info: FieldInfo) -> bytes:
        """Load one field's bytes; takes a read lock inside a transaction.

        This is the hottest call in the repo (every ``obj.field`` load
        lands here), so ``current_tx``/``block_offset`` and the
        ``read_bytes`` dispatch are inlined — same lock discipline, same
        device traffic, fewer frames.
        """
        tx = getattr(self._tls, "tx", None)
        if tx is not None and tx.state is TxState.ACTIVE:
            block = obj._oid - OBJ_HEADER_SIZE
            if block not in tx.read_set and block not in tx.write_set:
                # tx is verified ACTIVE: engine.on_read directly (the
                # note_read wrapper re-checks liveness and re-dispatches)
                self._on_read(tx, block, self.allocator.block_size_of(block))
        else:
            tx = None
        offset = obj._oid + info.offset
        size = info.ftype.size
        if self._translates:
            dest = self.engine.translate_read(tx, offset, size)
            if dest is not None:
                region, off = dest
                return region.read(off, size)
        if offset + size <= self._heap_size:
            return self._dev_read(self._heap_off + offset, size)
        return self.region.read(offset, size)

    def write_object_field(self, obj: PersistentStruct, info: FieldInfo, data: bytes) -> None:
        """Store one field's bytes; requires a declared write intent."""
        tx = self._require_tx()
        block = obj.block_offset
        if not tx.has_intent(block):
            raise WriteIntentError(
                f"write to {type(obj).__name__}.{info.name} without TX_ADD; "
                f"call obj.tx_add() first"
            )
        self.tx_raw_write(tx, obj.oid + info.offset, data, declared=True)

    # -- blob access --------------------------------------------------------------------

    def read_blob(self, oid: int, size: Optional[int] = None) -> bytes:
        """Read an untyped blob's contents (read-locked inside a tx)."""
        type_id, data_size = self.object_header(oid)
        if size is None:
            size = data_size
        tx = getattr(self._tls, "tx", None)
        if tx is not None and tx.state is TxState.ACTIVE:
            block = oid - OBJ_HEADER_SIZE
            if block not in tx.read_set and block not in tx.write_set:
                self._on_read(tx, block, self.allocator.block_size_of(block))
        return self.read_bytes(oid, size)

    def read_blob_at(self, oid: int, offset: int, size: int) -> bytes:
        """Read ``size`` bytes at ``offset`` inside a blob."""
        _type_id, data_size = self.object_header(oid)
        if offset < 0 or offset + size > data_size:
            raise ValueError(
                f"blob read [{offset}, {offset + size}) outside {data_size} bytes"
            )
        tx = getattr(self._tls, "tx", None)
        if tx is not None and tx.state is TxState.ACTIVE:
            block = oid - OBJ_HEADER_SIZE
            if block not in tx.read_set and block not in tx.write_set:
                self._on_read(tx, block, self.allocator.block_size_of(block))
        return self.read_bytes(oid + offset, size)

    def write_blob_at(self, oid: int, offset: int, data: bytes) -> None:
        """Overwrite part of a blob; the intent still covers the whole
        block (object-granular logging, as in NVML)."""
        _type_id, data_size = self.object_header(oid)
        if offset < 0 or offset + len(data) > data_size:
            raise ValueError(
                f"blob write [{offset}, {offset + len(data)}) outside {data_size} bytes"
            )
        tx = self._require_tx()
        block = oid - OBJ_HEADER_SIZE
        if not tx.has_intent(block):
            tx.add(block, self.allocator.block_size_of(block), IntentKind.WRITE)
        self.tx_raw_write(tx, oid + offset, data, declared=True)

    def write_blob(self, oid: int, data: bytes) -> None:
        """Overwrite a blob's contents; declares the intent if needed."""
        tx = self._require_tx()
        block = oid - OBJ_HEADER_SIZE
        if not tx.has_intent(block):
            tx.add(block, self.allocator.block_size_of(block), IntentKind.WRITE)
        self.tx_raw_write(tx, oid, data, declared=True)

    # -- raw transactional writes (allocator + internal) -----------------------------------

    def tx_raw_write(
        self, tx: Transaction, offset: int, data: bytes, declared: bool = False
    ) -> None:
        """Write raw bytes under transactional protection.

        When ``declared`` is false a word-granular ``WRITE`` intent is
        registered first (the allocator-metadata path).  The engine is
        given a chance to make its log durable before the first in-place
        store (Kamino's "intents durable before writes" rule).
        """
        if not declared and not tx.covers_write(offset, len(data)):
            tx.add(offset, len(data), IntentKind.WRITE)
        self.engine.before_data_write(tx)
        dest = self.engine.translate_write(tx, offset, len(data))
        if dest is None:
            self.region.write(offset, data)
        else:
            region, off = dest
            region.write(off, data)

    # -- root object ------------------------------------------------------------------------

    def set_root(self, obj: PersistentStruct) -> None:
        """Publish ``obj`` as the pool's root (durable immediately)."""
        self.pool.set_root_offset(obj.oid)

    def root(self, struct_cls: Optional[Type[T]] = None):
        """Fetch the root object, or ``None`` if unset."""
        oid = self.pool.root_offset
        if oid == PNULL:
            return None
        return self.deref(oid, struct_cls)

    # -- maintenance ---------------------------------------------------------------------------

    def drain(self) -> None:
        """Block until the engine has no deferred (async) work left."""
        while self.engine.sync_pending() > 0:
            pass

    @property
    def device(self) -> NVMDevice:
        return self.pool.device
