"""Persistent struct schemas and the type registry.

A schema gives each persistent object class a deterministic byte layout
and a stable ``type_id`` stored in the object header, so pointers can be
resurrected after a pool reopen without pickling anything.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..errors import SchemaError
from .layout import FieldType


class FieldInfo:
    """One field's resolved position within a struct."""

    __slots__ = ("name", "ftype", "offset")

    def __init__(self, name: str, ftype: FieldType, offset: int):
        self.name = name
        self.ftype = ftype
        self.offset = offset

    def __repr__(self) -> str:
        return f"FieldInfo({self.name!r}, {self.ftype!r}, off={self.offset})"


class StructSchema:
    """Resolved layout of a persistent struct: field order is layout order."""

    def __init__(self, name: str, fields: Sequence[Tuple[str, FieldType]]):
        if not fields:
            raise SchemaError(f"struct '{name}' has no fields")
        self.name = name
        self.fields: List[FieldInfo] = []
        self._by_name: Dict[str, FieldInfo] = {}
        offset = 0
        for fname, ftype in fields:
            if fname in self._by_name:
                raise SchemaError(f"duplicate field '{fname}' in struct '{name}'")
            if not isinstance(ftype, FieldType):
                raise SchemaError(
                    f"field '{fname}' of '{name}' must be a FieldType instance, "
                    f"got {ftype!r}"
                )
            info = FieldInfo(fname, ftype, offset)
            self.fields.append(info)
            self._by_name[fname] = info
            offset += ftype.size
        self.size = offset
        self.type_id = self._compute_type_id()

    def _compute_type_id(self) -> int:
        signature = self.name + "|" + "|".join(
            f"{f.name}:{f.ftype!r}" for f in self.fields
        )
        # never 0: 0 means "untyped blob" in headers
        return (zlib.crc32(signature.encode("utf-8")) & 0xFFFFFFFF) or 1

    def field(self, name: str) -> FieldInfo:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"struct '{self.name}' has no field '{name}'") from None

    def __repr__(self) -> str:
        return f"<StructSchema {self.name} size={self.size} id={self.type_id:#x}>"


class SchemaRegistry:
    """Maps type ids to (schema, python class) for pointer resurrection.

    The registry is volatile by design: classes must be imported before a
    reopened pool is traversed, the same requirement any native persistent
    heap has.
    """

    def __init__(self):
        self._by_id: Dict[int, Tuple[StructSchema, type]] = {}

    def register(self, schema: StructSchema, cls: type) -> None:
        existing = self._by_id.get(schema.type_id)
        if existing is not None and existing[1] is not cls:
            raise SchemaError(
                f"type id collision: {schema.name} vs {existing[0].name}"
            )
        self._by_id[schema.type_id] = (schema, cls)

    def lookup(self, type_id: int) -> Tuple[StructSchema, type]:
        try:
            return self._by_id[type_id]
        except KeyError:
            raise SchemaError(f"unknown type id {type_id:#x}; import its class first") from None

    def known(self, type_id: int) -> bool:
        return type_id in self._by_id


#: Process-wide registry; sufficient because type ids are content-derived.
GLOBAL_REGISTRY = SchemaRegistry()
