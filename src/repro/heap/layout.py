"""Field types for persistent structs.

Persistent objects in the paper's heap "store native types such as
integers, floats, doubles, strings and also persistent pointers to other
persistent objects" (§3).  Each :class:`FieldType` maps one such native
type to a fixed-size byte encoding so object layouts are deterministic
and byte-addressable — transactions touch exact byte ranges, which is
the granularity the whole evaluation is about.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from typing import Any

from ..errors import SchemaError

#: The null persistent pointer (offset 0 is the pool header, never data).
PNULL = 0

_INT64 = struct.Struct("<q")
_UINT64 = struct.Struct("<Q")
_INT32 = struct.Struct("<i")
_FLOAT64 = struct.Struct("<d")


class FieldType(ABC):
    """A fixed-size, byte-encodable field of a persistent struct."""

    size: int

    @abstractmethod
    def pack(self, value: Any) -> bytes:
        """Encode ``value`` into exactly ``self.size`` bytes."""

    @abstractmethod
    def unpack(self, data: bytes) -> Any:
        """Decode ``self.size`` bytes back into a Python value."""

    def default(self) -> Any:
        """The zero value a freshly allocated field reads as."""
        return self.unpack(b"\0" * self.size)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Int64(FieldType):
    """Signed 64-bit integer."""

    size = 8
    fmt = "q"

    def pack(self, value: int) -> bytes:
        try:
            return _INT64.pack(value)
        except struct.error as exc:
            raise SchemaError(f"Int64 out of range: {value!r}") from exc

    def unpack(self, data: bytes) -> int:
        return _INT64.unpack(data)[0]


class UInt64(FieldType):
    """Unsigned 64-bit integer."""

    size = 8
    fmt = "Q"

    def pack(self, value: int) -> bytes:
        try:
            return _UINT64.pack(value)
        except struct.error as exc:
            raise SchemaError(f"UInt64 out of range: {value!r}") from exc

    def unpack(self, data: bytes) -> int:
        return _UINT64.unpack(data)[0]


class Int32(FieldType):
    """Signed 32-bit integer."""

    size = 4
    fmt = "i"

    def pack(self, value: int) -> bytes:
        try:
            return _INT32.pack(value)
        except struct.error as exc:
            raise SchemaError(f"Int32 out of range: {value!r}") from exc

    def unpack(self, data: bytes) -> int:
        return _INT32.unpack(data)[0]


class Float64(FieldType):
    """IEEE-754 double."""

    size = 8
    fmt = "d"

    def pack(self, value: float) -> bytes:
        return _FLOAT64.pack(value)

    def unpack(self, data: bytes) -> float:
        return _FLOAT64.unpack(data)[0]


class FixedStr(FieldType):
    """UTF-8 string in a fixed-size, NUL-padded buffer."""

    def __init__(self, size: int):
        if size <= 0:
            raise SchemaError("FixedStr size must be positive")
        self.size = size

    def pack(self, value: str) -> bytes:
        raw = value.encode("utf-8")
        if len(raw) > self.size:
            raise SchemaError(
                f"string of {len(raw)} bytes exceeds FixedStr({self.size})"
            )
        return raw.ljust(self.size, b"\0")

    def unpack(self, data: bytes) -> str:
        return data.rstrip(b"\0").decode("utf-8")

    def __repr__(self) -> str:
        return f"FixedStr({self.size})"


class Bytes(FieldType):
    """Raw bytes in a fixed-size, NUL-padded buffer."""

    def __init__(self, size: int):
        if size <= 0:
            raise SchemaError("Bytes size must be positive")
        self.size = size

    def pack(self, value: bytes) -> bytes:
        if len(value) > self.size:
            raise SchemaError(f"{len(value)} bytes exceed Bytes({self.size})")
        return bytes(value).ljust(self.size, b"\0")

    def unpack(self, data: bytes) -> bytes:
        return bytes(data)

    def __repr__(self) -> str:
        return f"Bytes({self.size})"


class Array(FieldType):
    """A fixed-count array of one element type, read/written as a list.

    Reading yields a list of ``count`` values; writing accepts any
    sequence of exactly ``count`` values.  Used by the B+Tree for key
    and child arrays — one field write updates the whole array, matching
    the object-granular logging the paper measures against.
    """

    def __init__(self, element: "FieldType", count: int):
        if count <= 0:
            raise SchemaError("Array count must be positive")
        if not isinstance(element, FieldType):
            raise SchemaError("Array element must be a FieldType instance")
        self.element = element
        self.count = count
        self.size = element.size * count
        # B+Tree key/child arrays decode on every node visit, so arrays
        # of stock scalar elements batch through one precompiled Struct
        # (exact types only: a subclass may override pack/unpack)
        self._batch = (
            struct.Struct(f"<{count}{element.fmt}")
            if type(element) in (Int64, UInt64, Int32, Float64, PPtr)
            else None
        )

    def pack(self, value) -> bytes:
        values = list(value)
        if len(values) != self.count:
            raise SchemaError(
                f"Array({self.count}) got {len(values)} elements"
            )
        if self._batch is not None:
            try:
                return self._batch.pack(*values)
            except struct.error:
                # fall through for the element's own error/None handling
                pass
        return b"".join(self.element.pack(v) for v in values)

    def unpack(self, data: bytes):
        if self._batch is not None:
            return list(self._batch.unpack(data))
        es = self.element.size
        return [
            self.element.unpack(data[i * es : (i + 1) * es]) for i in range(self.count)
        ]

    def __repr__(self) -> str:
        return f"Array({self.element!r}, {self.count})"


class PPtr(FieldType):
    """Persistent pointer: a heap-region offset, 0 (``PNULL``) = null.

    Persistent pointers are offsets rather than virtual addresses so the
    heap is position-independent across reopens — the same design as
    NVML's ``PMEMoid``.
    """

    size = 8
    fmt = "Q"

    def pack(self, value: int) -> bytes:
        if value is None:
            value = PNULL
        if value < 0:
            raise SchemaError(f"persistent pointer cannot be negative: {value}")
        return _UINT64.pack(value)

    def unpack(self, data: bytes) -> int:
        return _UINT64.unpack(data)[0]
