"""NVML/PMDK-style macro API (paper Figure 10, Table 2).

The paper's implementation is "a user-level library ... that redefines
the functionality of a set of interfaces defined by NVML", so that "any
application that works with NVML just needs to be re-linked to work with
Kamino-Tx".  This module reproduces that surface in Python: code written
against these names runs unchanged on any engine, and swapping the
engine swaps the atomicity scheme — the exact experimental methodology
of the paper.

==================  =========================================================
NVML name           Behaviour here (Table 2's Kamino column)
==================  =========================================================
``TX_BEGIN(pop)``   context manager opening a transaction on the pool
``TX_ADD(obj)``     declare a write intent (Kamino: a 32-byte log entry,
                    no data copied; undo: copies the object to the log)
``TX_ZALLOC``       allocate a zeroed object/blob inside the transaction
``TX_FREE(obj)``    transactionally deallocate (applied at commit)
``TX_COMMIT()``     explicit early commit of the enclosing block
``TX_ABORT()``      roll back the enclosing block
``D_RW(obj)``       "direct read-write" pointer — the typed handle itself
``D_RO(obj)``       read-only view raising on attribute writes
``POBJ_ROOT``       fetch/assign the pool's root object
==================  =========================================================
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Type, TypeVar

from ..errors import TxAborted
from .heap import PersistentHeap
from .object import PersistentStruct

T = TypeVar("T", bound=PersistentStruct)


@contextmanager
def TX_BEGIN(pop: PersistentHeap) -> Iterator:
    """``TX_BEGIN(pop) { ... } TX_END``: commit on exit, abort on raise."""
    with pop.transaction() as tx:
        yield tx


def TX_ADD(obj: PersistentStruct) -> None:
    """Declare a write intent for the whole object.

    In unmodified NVML this copies the object into the undo log; under a
    Kamino engine only the object's address is logged (§6.1, Table 2).
    """
    obj.tx_add()


def TX_ZALLOC(pop: PersistentHeap, struct_cls: Type[T]) -> T:
    """Allocate a zeroed object of ``struct_cls`` (reports to the Log
    Manager via the ALLOC intent)."""
    return pop.alloc(struct_cls)


def TX_ZALLOC_BYTES(pop: PersistentHeap, nbytes: int) -> int:
    """Allocate a zeroed untyped blob; returns its persistent pointer."""
    return pop.alloc_blob(nbytes)


def TX_FREE(obj_or_oid) -> None:
    """Transactionally deallocate; the bitmap clear lands at commit."""
    heap = obj_or_oid._heap if isinstance(obj_or_oid, PersistentStruct) else None
    if heap is None:
        raise TypeError(
            "TX_FREE needs a typed handle; use heap.free(oid) for raw pointers"
        )
    heap.free(obj_or_oid)


def TX_COMMIT(pop: PersistentHeap) -> None:
    """Commit the current transaction immediately (before block exit)."""
    tx = pop.current_tx
    if tx is not None:
        tx.depth = 1
        tx.commit()


def TX_ABORT() -> None:
    """Abort the enclosing ``TX_BEGIN`` block (raises ``TxAborted``)."""
    raise TxAborted()


def D_RW(obj: T) -> T:
    """Direct read-write pointer.

    NVML's ``D_RW`` converts a PMEMoid into a typed virtual-memory
    pointer; our typed handles already *are* that, so this is the
    identity — kept for source compatibility with Figure 10.
    """
    return obj


class _ReadOnlyView:
    """Attribute reads pass through; writes raise (NVML's const pointer)."""

    __slots__ = ("_obj",)

    def __init__(self, obj: PersistentStruct):
        object.__setattr__(self, "_obj", obj)

    def __getattr__(self, name):
        return getattr(object.__getattribute__(self, "_obj"), name)

    def __setattr__(self, name, value):
        raise AttributeError(f"D_RO view is read-only (writing '{name}')")


def D_RO(obj: PersistentStruct) -> _ReadOnlyView:
    """Read-only pointer: attribute writes raise ``AttributeError``."""
    return _ReadOnlyView(obj)


def POBJ_ROOT(pop: PersistentHeap, struct_cls: Optional[Type[T]] = None):
    """The pool's root object handle (None if unset)."""
    return pop.root(struct_cls)


def POBJ_SET_ROOT(pop: PersistentHeap, obj: PersistentStruct) -> None:
    """Publish the root object (durable immediately, as in pmemobj)."""
    pop.set_root(obj)
