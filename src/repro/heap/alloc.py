"""Segregated bitmap slab allocator for the persistent heap.

All *persistent* allocator state is bitmap words and a chunk table —
8-byte, power-fail-atomic units — so allocation and deallocation reduce
to ordinary transactional word writes.  This realises the paper's §6.1:
"allocations and deallocations are simply treated as modifications to
persistent metadata objects that the application atomically modifies
indirectly via the object allocation and deallocation calls made within
transactions."  Abort (or crash rollback) of the metadata word undoes
the allocation; nothing leaks.

Layout of the heap region::

    [header 64B][chunk table][bitmap area][data chunks ...]

Each chunk is dedicated, on first use, to one size class (32 B … 4 KiB).
A chunk's bitmap has one bit per slot.  Volatile mirrors (free counts,
class lists, word caches) accelerate the search and are rebuilt from the
persistent words on reopen.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from ..errors import (
    DoubleFreeError,
    HeapError,
    InvalidPointerError,
    OutOfMemoryError,
    PoolCorruptionError,
)
from ..nvm.pool import PmemRegion
from ..tx.base import IntentKind, Transaction

SIZE_CLASSES = (32, 64, 128, 256, 512, 1024, 2048, 4096)
MIN_BLOCK = SIZE_CLASSES[0]
MAX_BLOCK = SIZE_CLASSES[-1]

ALLOC_MAGIC = 0x534C4142  # "SLAB"
_HDR_FMT = "<QQQQQQ"  # magic, chunk_size, n_chunks, chunktab_off, bitmap_off, data_off
_HDR_SIZE = struct.calcsize(_HDR_FMT)

_WORD_BITS = 64
_ALL_ONES = (1 << _WORD_BITS) - 1


def class_for(nbytes: int) -> int:
    """Smallest size class that fits ``nbytes``; raises if too large."""
    for c in SIZE_CLASSES:
        if nbytes <= c:
            return c
    raise OutOfMemoryError(
        f"allocation of {nbytes} bytes exceeds the largest class ({MAX_BLOCK})"
    )


class SlabAllocator:
    """Transactional slab allocator over one heap region.

    The allocator never touches the device directly for mutations: every
    persistent write goes through ``writer.tx_raw_write`` so the active
    atomicity engine captures it.  ``writer`` is the owning heap.

    Args:
        region: the heap region (shared with object data).
        writer: object providing ``tx_raw_write(tx, off, data, kind)``.
        chunk_size: bytes per chunk; must be a multiple of ``MAX_BLOCK``.
    """

    def __init__(self, region: PmemRegion, writer, chunk_size: int = 64 * 1024):
        if chunk_size % MAX_BLOCK != 0:
            raise HeapError("chunk_size must be a multiple of the largest class")
        self.region = region
        self.writer = writer
        self.chunk_size = chunk_size
        # persistent geometry, fixed at format time
        self.n_chunks = 0
        self.chunktab_off = 0
        self.bitmap_off = 0
        self.data_off = 0
        self._bitmap_stride = chunk_size // MIN_BLOCK // 8  # bytes per chunk bitmap
        # volatile mirrors
        self._chunk_class: List[int] = []
        self._free_counts: List[int] = []
        self._words: List[List[int]] = []  # per chunk, bitmap words
        self._class_chunks: Dict[int, List[int]] = {c: [] for c in SIZE_CLASSES}
        self._unassigned: List[int] = []

    # -- geometry -------------------------------------------------------------

    def _compute_geometry(self) -> None:
        """Split the region into chunk table, bitmaps, and data chunks."""
        per_chunk = 8 + self._bitmap_stride + self.chunk_size
        budget = self.region.size - 64
        n = budget // per_chunk
        if n < 1:
            raise HeapError(
                f"heap region of {self.region.size} bytes too small for one "
                f"{self.chunk_size}-byte chunk"
            )
        self.n_chunks = n
        self.chunktab_off = 64
        self.bitmap_off = self.chunktab_off + 8 * n
        # align data to the chunk size for tidy arithmetic
        data = self.bitmap_off + self._bitmap_stride * n
        self.data_off = (data + 63) // 64 * 64

    # -- lifecycle --------------------------------------------------------------

    def format(self) -> None:
        """Initialise a fresh region (device bytes are already zero)."""
        self._compute_geometry()
        header = struct.pack(
            _HDR_FMT,
            ALLOC_MAGIC,
            self.chunk_size,
            self.n_chunks,
            self.chunktab_off,
            self.bitmap_off,
            self.data_off,
        )
        self.region.write(0, header)
        self.region.flush(0, _HDR_SIZE)
        self.region.pool.device.fence()
        self._reset_mirrors()

    def open(self) -> None:
        """Rebuild volatile mirrors from persistent state after reopen."""
        raw = self.region.read(0, _HDR_SIZE)
        magic, chunk_size, n, ctab, boff, doff = struct.unpack(_HDR_FMT, raw)
        if magic != ALLOC_MAGIC:
            raise PoolCorruptionError("heap region has no allocator header")
        self.chunk_size = chunk_size
        self._bitmap_stride = chunk_size // MIN_BLOCK // 8
        self.n_chunks = n
        self.chunktab_off = ctab
        self.bitmap_off = boff
        self.data_off = doff
        self._reset_mirrors()
        tab = self.region.read(self.chunktab_off, 8 * n)
        for ci in range(n):
            cls = struct.unpack_from("<Q", tab, ci * 8)[0]
            if cls == 0:
                continue
            if cls not in SIZE_CLASSES:
                raise PoolCorruptionError(f"chunk {ci} has invalid class {cls}")
            self._assign_mirror(ci, cls)
            self._reload_chunk_words(ci)

    def _reset_mirrors(self) -> None:
        self._chunk_class = [0] * self.n_chunks
        self._free_counts = [0] * self.n_chunks
        self._words = [[] for _ in range(self.n_chunks)]
        self._class_chunks = {c: [] for c in SIZE_CLASSES}
        self._unassigned = list(range(self.n_chunks - 1, -1, -1))

    def _assign_mirror(self, ci: int, cls: int) -> None:
        self._chunk_class[ci] = cls
        self._class_chunks[cls].append(ci)
        if ci in self._unassigned:
            self._unassigned.remove(ci)
        nslots = self.chunk_size // cls
        self._words[ci] = [0] * ((nslots + _WORD_BITS - 1) // _WORD_BITS)
        self._free_counts[ci] = nslots

    def _reload_chunk_words(self, ci: int) -> None:
        """Re-read a chunk's bitmap words from NVM into the mirror."""
        cls = self._chunk_class[ci]
        if cls == 0:
            return
        nslots = self.chunk_size // cls
        nwords = (nslots + _WORD_BITS - 1) // _WORD_BITS
        raw = self.region.read(self.bitmap_off + ci * self._bitmap_stride, nwords * 8)
        words = list(struct.unpack(f"<{nwords}Q", raw))
        self._words[ci] = words
        used = sum(bin(w).count("1") for w in words)
        self._free_counts[ci] = nslots - used

    # -- queries ----------------------------------------------------------------

    def block_size_of(self, block_off: int) -> int:
        """Size class of the block at ``block_off`` (data-area offset)."""
        # on every transactional read's lock path: only the chunk-class
        # lookup is needed, so the full _locate() validation is deferred
        # to the error branch
        rel = block_off - self.data_off
        if rel >= 0:
            ci = rel // self.chunk_size
            if ci < self.n_chunks:
                cls = self._chunk_class[ci]
                if cls and rel % self.chunk_size % cls == 0:
                    return cls
        _ci, cls, _slot = self._locate(block_off)
        return cls

    def is_allocated(self, block_off: int) -> bool:
        ci, cls, slot = self._locate(block_off)
        word = self._words[ci][slot // _WORD_BITS]
        return bool(word & (1 << (slot % _WORD_BITS)))

    def _locate(self, block_off: int) -> Tuple[int, int, int]:
        if block_off < self.data_off:
            raise InvalidPointerError(f"offset {block_off} before data area")
        rel = block_off - self.data_off
        ci = rel // self.chunk_size
        if ci >= self.n_chunks:
            raise InvalidPointerError(f"offset {block_off} past last chunk")
        cls = self._chunk_class[ci]
        if cls == 0:
            raise InvalidPointerError(f"offset {block_off} in unassigned chunk {ci}")
        within = rel % self.chunk_size
        if within % cls != 0:
            raise InvalidPointerError(
                f"offset {block_off} not aligned to class {cls} in chunk {ci}"
            )
        return ci, cls, within // cls

    def live_ranges(self) -> List[Tuple[int, int]]:
        """(offset, size) of every byte the mirror invariant covers:
        the allocator metadata area plus each allocated block.

        Free data bytes are exempt — rolling back an aborted/crashed
        allocation undoes only the bitmap word (``IntentKind.ALLOC``
        carries no undo data), so a torn store into a block that was
        never successfully allocated legitimately survives in main
        without a backup counterpart.  Adjacent ranges are coalesced.
        """
        ranges: List[Tuple[int, int]] = [(0, self.data_off)]
        for ci, cls in enumerate(self._chunk_class):
            if cls == 0:
                continue
            base = self.data_off + ci * self.chunk_size
            words = self._words[ci]
            for slot in range(self.chunk_size // cls):
                if words[slot // _WORD_BITS] & (1 << (slot % _WORD_BITS)):
                    off = base + slot * cls
                    last_off, last_size = ranges[-1]
                    if last_off + last_size == off:
                        ranges[-1] = (last_off, last_size + cls)
                    else:
                        ranges.append((off, cls))
        return ranges

    @property
    def allocated_bytes(self) -> int:
        total = 0
        for ci, cls in enumerate(self._chunk_class):
            if cls:
                nslots = self.chunk_size // cls
                total += (nslots - self._free_counts[ci]) * cls
        return total

    @property
    def capacity_bytes(self) -> int:
        return self.n_chunks * self.chunk_size

    # -- allocation ----------------------------------------------------------------

    def alloc(self, tx: Transaction, nbytes: int) -> int:
        """Allocate a block of at least ``nbytes``; returns its offset.

        The bitmap word write is a regular transactional ``WRITE`` so the
        engine can undo it on abort; the block itself is reported as an
        ``ALLOC`` intent (no undo data needed for fresh contents).
        """
        cls = class_for(nbytes)
        ci = self._find_chunk(tx, cls)
        slot = self._find_slot(ci)
        self._set_bit(tx, ci, cls, slot, value=True)
        block_off = self.data_off + ci * self.chunk_size + slot * cls
        tx.add(block_off, cls, IntentKind.ALLOC)
        # zero the block so freshly allocated fields read as defaults
        self.writer.tx_raw_write(tx, block_off, b"\0" * cls, declared=True)
        return block_off

    def _find_chunk(self, tx: Transaction, cls: int) -> int:
        for ci in self._class_chunks[cls]:
            if self._free_counts[ci] > 0:
                return ci
        return self._claim_chunk(tx, cls)

    def _claim_chunk(self, tx: Transaction, cls: int) -> int:
        if not self._unassigned:
            raise OutOfMemoryError(
                f"no free chunk for class {cls}; heap capacity exhausted"
            )
        ci = self._unassigned[-1]
        entry_off = self.chunktab_off + ci * 8
        self.writer.tx_raw_write(tx, entry_off, struct.pack("<Q", cls))
        self._unassigned.pop()
        self._assign_mirror_for_tx(tx, ci, cls)
        return ci

    def _assign_mirror_for_tx(self, tx: Transaction, ci: int, cls: int) -> None:
        self._chunk_class[ci] = cls
        self._class_chunks[cls].append(ci)
        nslots = self.chunk_size // cls
        self._words[ci] = [0] * ((nslots + _WORD_BITS - 1) // _WORD_BITS)
        self._free_counts[ci] = nslots

        def undo_claim() -> None:
            self._chunk_class[ci] = 0
            self._class_chunks[cls].remove(ci)
            self._words[ci] = []
            self._free_counts[ci] = 0
            self._unassigned.append(ci)

        tx.on_abort.append(undo_claim)

    def _find_slot(self, ci: int) -> int:
        cls = self._chunk_class[ci]
        nslots = self.chunk_size // cls
        words = self._words[ci]
        for wi, word in enumerate(words):
            if word == _ALL_ONES:
                continue
            base = wi * _WORD_BITS
            limit = min(_WORD_BITS, nslots - base)
            inv = ~word
            for b in range(limit):
                if inv & (1 << b):
                    return base + b
        raise OutOfMemoryError(f"chunk {ci} unexpectedly full")  # pragma: no cover

    # -- deallocation ---------------------------------------------------------------

    def defer_free(self, tx: Transaction, block_off: int) -> None:
        """Schedule ``block_off`` for deallocation at commit (TX_FREE)."""
        ci, cls, slot = self._locate(block_off)
        word = self._words[ci][slot // _WORD_BITS]
        if not word & (1 << (slot % _WORD_BITS)):
            raise DoubleFreeError(f"block at {block_off} is not allocated")
        for pending_off, _sz in tx.deferred_frees:
            if pending_off == block_off:
                raise DoubleFreeError(f"block at {block_off} freed twice in one tx")
        tx.deferred_frees.append((block_off, cls))
        tx.add(block_off, cls, IntentKind.FREE)

    def apply_free(self, tx: Transaction, block_off: int, size: int) -> None:
        """Clear the bitmap bit; called by the engine at commit time."""
        ci, cls, slot = self._locate(block_off)
        self._set_bit(tx, ci, cls, slot, value=False)

    # -- bit plumbing -----------------------------------------------------------------

    def _set_bit(self, tx: Transaction, ci: int, cls: int, slot: int, value: bool) -> None:
        wi = slot // _WORD_BITS
        bit = 1 << (slot % _WORD_BITS)
        old = self._words[ci][wi]
        new = (old | bit) if value else (old & ~bit)
        word_off = self.bitmap_off + ci * self._bitmap_stride + wi * 8
        self.writer.tx_raw_write(tx, word_off, struct.pack("<Q", new))
        self._words[ci][wi] = new
        self._free_counts[ci] += -1 if value else 1

        def undo_bit() -> None:
            self._words[ci][wi] = old
            self._free_counts[ci] += 1 if value else -1

        tx.on_abort.append(undo_bit)

    # -- recovery support ----------------------------------------------------------------

    def reload_after_recovery(self) -> None:
        """Resynchronise every volatile mirror with NVM (post-recovery)."""
        self.open()
