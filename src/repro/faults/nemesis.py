"""The nemesis: a deterministic fault scheduler for chain clusters.

A :class:`NemesisScenario` is a *declarative* fault script — a name plus
a list of timed :class:`FaultAction` verbs — so the same scenario drives
tests, the ``repro nemesis`` CLI, and the crash explorer's nemesis
sweep, and round-trips through plain dicts (``to_dict``/``from_dict``)
for ad-hoc scenario files.

The :class:`Nemesis` arms every action as an event on the cluster's
simulator; actions fire at virtual-time boundaries interleaved with
protocol traffic, and every probabilistic draw downstream comes from the
cluster's seeded RNG, so a ``(scenario, seed)`` pair replays exactly.

Action verbs (``node`` / ``src`` / ``dst`` take a chain index or one of
``"head"``, ``"mid"``, ``"tail"``, resolved against the topology *at
fire time*):

==============  ============================================================
verb            effect
==============  ============================================================
flaky_link      install a :class:`LinkFaultPolicy` on ``src → dst`` (drop /
                duplicate / reorder / corrupt / jitter); omit both
                endpoints to set the network-wide default policy
partition       split the chain into node groups that cannot cross-talk
heal            remove the partition
slow_node       add fixed delivery delay to or from one node
clear_faults    remove every link fault, partition, and slow-down
quick_reboot    §5.3 crash + in-place repair of one replica
fail_stop       §5.2 removal + chain re-stitch (no replacement)
crash_replace   fail-stop + splice in a caught-up spare, one view change
trip_breaker    force a chain's circuit breaker open (as if its
                ``degrade_after`` ladder had just been exhausted) for
                ``cooldown_ns``; the selector picks the group
close_breaker   force the breaker closed and readmit any parked writes
migrate_shard   start an online shard migration (sharded clusters only);
                ``shard`` is an id or ``"hottest"``/``"coldest"``,
                ``dst`` a group id or omitted for the least-loaded group
crash_coord     power-fail the migration coordinator: volatile migration
                state dies, the placement log survives, and recovery
                resumes every in-flight migration from its durable cursor
media_flip      inject seeded latent bit flips into one replica's durable
                media (``target``: live heap bytes, whole heap, backup,
                or input queue)
media_dead      declare seeded random cache lines uncorrectable on one
                replica (reads raise until quarantined)
media_scrub     run a scrub-and-repair pass on one replica (or all of
                them), with neighbour state transfer as the last resort;
                a no-op on unprotected media — nothing can be detected
media_stale     adversarial consistent replay on one replica: live main
                lines that changed since the scheduled snapshot leg
                (``snapshot_at_ns``) get their old bytes back together
                with the matching stale CRC forged into the sidecar —
                per-line checksums verify clean; only an integrity tree
                (``scenario.tree``) still disputes and repairs them
==============  ============================================================

Media verbs need a :class:`~repro.integrity.model.MediaFaultModel` on the
replica's device; the runner attaches one per node when
``scenario.media`` is ``"protected"`` (checksum sidecar maintained) or
``"unprotected"`` (faults injected, nothing detects them — the
demonstration configuration), and the verbs attach one lazily otherwise.

Sharded clusters (``scenario.groups > 1``) prefix every node selector
with its group: ``"g1:head"``, ``"g0:2"``.  An unprefixed selector on a
sharded cluster targets group 0, so single-chain scenarios keep their
meaning when replayed against a one-group cluster.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..nvm.latency import CACHE_LINE as _CACHE_LINE
from ..replication.chain import ChainCluster
from ..replication.recovery import fail_stop, quick_reboot, replace_node, scrub_node
from ..sim.network import LinkFaultPolicy

_LINE_SHIFT = _CACHE_LINE.bit_length() - 1


@dataclass(frozen=True)
class FaultAction:
    """One timed nemesis intervention: fire ``verb(**params)`` at
    virtual time ``at_ns``."""

    at_ns: float
    verb: str
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"at_ns": self.at_ns, "verb": self.verb, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultAction":
        return cls(
            at_ns=float(data["at_ns"]),
            verb=str(data["verb"]),
            params=dict(data.get("params", {})),
        )

    def describe(self) -> str:
        kv = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"t={self.at_ns / 1000:.0f}µs {self.verb}({kv})"


@dataclass(frozen=True)
class NemesisScenario:
    """A named fault script plus the client workload it runs against.

    Each client writes a private key range (client ``i`` owns keys
    ``i * 1000 ...``), which keeps the convergence oracle's
    last-acked-value-per-key check unambiguous under concurrency.
    """

    name: str
    description: str = ""
    actions: Tuple[FaultAction, ...] = ()
    n_clients: int = 3
    ops_per_client: int = 12
    keyspace: int = 4
    read_fraction: float = 0.0
    #: media-fault configuration: "off" (no model attached), "protected"
    #: (model + checksum sidecar on every replica), or "unprotected"
    #: (model without detection — media verbs corrupt silently)
    media: str = "off"
    #: integrity-tree mode on every replica's media model ("off",
    #: "streamed", or "eager"); requires media="protected".  The tree is
    #: what catches the media_stale verb's consistent stale-CRC replays
    tree: str = "off"
    #: chain groups; > 1 builds a sharded cluster instead of one chain
    groups: int = 1
    shards_per_group: int = 2
    #: zipfian theta over each client's private key range (0 = uniform);
    #: skews traffic onto a hot shard, the hot_shard_skew ingredient
    key_skew: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "actions": [a.to_dict() for a in self.actions],
            "n_clients": self.n_clients,
            "ops_per_client": self.ops_per_client,
            "keyspace": self.keyspace,
            "read_fraction": self.read_fraction,
            "media": self.media,
            "tree": self.tree,
            "groups": self.groups,
            "shards_per_group": self.shards_per_group,
            "key_skew": self.key_skew,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NemesisScenario":
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            actions=tuple(
                FaultAction.from_dict(a) for a in data.get("actions", ())
            ),
            n_clients=int(data.get("n_clients", 3)),
            ops_per_client=int(data.get("ops_per_client", 12)),
            keyspace=int(data.get("keyspace", 4)),
            read_fraction=float(data.get("read_fraction", 0.0)),
            media=str(data.get("media", "off")),
            tree=str(data.get("tree", "off")),
            groups=int(data.get("groups", 1)),
            shards_per_group=int(data.get("shards_per_group", 2)),
            key_skew=float(data.get("key_skew", 0.0)),
        )

    def describe(self) -> str:
        lines = [f"{self.name}: {self.description}"]
        lines += [f"  {a.describe()}" for a in self.actions]
        return "\n".join(lines)


def _resolve_index(cluster: ChainCluster, sel: Any) -> int:
    """Chain index for a selector: an int, or head/mid/tail by role."""
    if isinstance(sel, int):
        if not -len(cluster.chain) <= sel < len(cluster.chain):
            raise ValueError(f"replica index {sel} out of range")
        return sel % len(cluster.chain)
    if sel == "head":
        return 0
    if sel == "tail":
        return len(cluster.chain) - 1
    if sel == "mid":
        if len(cluster.chain) < 3:
            raise ValueError("chain has no mid replica")
        return 1
    raise ValueError(f"unknown replica selector {sel!r}")


def _resolve_id(cluster: ChainCluster, sel: Any) -> str:
    return cluster.chain[_resolve_index(cluster, sel)].node_id


class Nemesis:
    """Arms a scenario's actions on the cluster's event simulator.

    ``cluster`` is a :class:`~repro.replication.chain.ChainCluster` or a
    :class:`~repro.cluster.sharded.ShardedCluster`; node-targeting verbs
    resolve group-qualified selectors against the latter's groups.
    """

    def __init__(self, cluster: Any, scenario: NemesisScenario):
        self.cluster = cluster
        self.scenario = scenario
        #: (fired_at_ns, action) log, in firing order
        self.fired: List[Tuple[float, FaultAction]] = []
        #: whether lazily attached media models carry a checksum sidecar
        self.media_protected = scenario.media != "unprotected"
        #: integrity-tree mode for lazily attached media models
        self.media_tree = scenario.tree if scenario.tree != "off" else None
        #: media_stale ammunition: (node, snapshot_at_ns) -> line images
        self._stale_snaps: Dict[Tuple[str, float], Dict[str, Any]] = {}

    def arm(self) -> None:
        for action in self.scenario.actions:
            if action.verb == "media_stale":
                # the replay needs *older* line images: schedule the
                # snapshot leg at snapshot_at_ns, the replay at at_ns
                snap_ns = float(action.params.get("snapshot_at_ns", 0.0))
                node = action.params.get("node", "head")
                self.cluster.sim.at(
                    snap_ns, self._snapshot_stale, node, snap_ns
                )
            self.cluster.sim.at(action.at_ns, self._fire, action)

    def _fire(self, action: FaultAction) -> None:
        handler = getattr(self, f"_do_{action.verb}", None)
        if handler is None:
            raise ValueError(f"unknown nemesis verb '{action.verb}'")
        handler(**action.params)
        self.fired.append((self.cluster.sim.now, action))

    # -- selector resolution ------------------------------------------------------

    def _chain(self, sel: Any) -> Tuple[ChainCluster, Any]:
        """(chain, inner selector) for a possibly group-qualified one.

        ``"g1:head"`` / ``"g0:2"`` pick a group of a sharded cluster;
        anything else resolves against the chain itself (group 0 when
        the cluster is sharded, so single-chain scripts still replay)."""
        cluster = self.cluster
        if isinstance(sel, str) and ":" in sel:
            gtag, _, inner = sel.partition(":")
            if not gtag.startswith("g") or not gtag[1:].isdigit():
                raise ValueError(f"bad group selector {sel!r}")
            groups = getattr(cluster, "groups", None)
            if not isinstance(groups, list):
                raise ValueError(
                    f"selector {sel!r} needs a sharded cluster"
                )
            cluster = groups[int(gtag[1:])]
            sel = int(inner) if inner.lstrip("-").isdigit() else inner
        elif not hasattr(cluster, "chain"):
            cluster = cluster.groups[0]
        return cluster, sel

    def _node_id(self, sel: Any) -> str:
        chain, inner = self._chain(sel)
        return _resolve_id(chain, inner)

    # -- link verbs ------------------------------------------------------------

    def _do_flaky_link(self, src: Any = None, dst: Any = None, **knobs: float) -> None:
        policy = LinkFaultPolicy(**knobs)
        if src is None and dst is None:
            self.cluster.net.set_default_policy(policy)
        else:
            self.cluster.net.set_link_policy(
                self._node_id(src), self._node_id(dst), policy
            )

    def _do_partition(self, groups: List[List[Any]]) -> None:
        resolved = [[self._node_id(sel) for sel in g] for g in groups]
        self.cluster.net.partition(resolved)

    def _do_heal(self) -> None:
        self.cluster.net.heal_partition()

    def _do_slow_node(self, node: Any, delay_ns: float) -> None:
        self.cluster.net.set_node_delay(self._node_id(node), delay_ns)

    def _do_clear_faults(self) -> None:
        self.cluster.net.clear_faults()

    # -- replica verbs ----------------------------------------------------------

    def _do_quick_reboot(self, node: Any) -> None:
        chain, inner = self._chain(node)
        quick_reboot(chain, _resolve_index(chain, inner))

    def _do_fail_stop(self, node: Any) -> None:
        chain, inner = self._chain(node)
        fail_stop(chain, _resolve_index(chain, inner))

    def _do_crash_replace(self, node: Any) -> None:
        chain, inner = self._chain(node)
        replace_node(chain, _resolve_index(chain, inner))

    def _do_trip_breaker(self, node: Any = "head",
                         cooldown_ns: float = None) -> None:
        # the selector only picks the group (the breaker is chain-wide)
        chain, _inner = self._chain(node)
        chain.trip_breaker(cooldown_ns)

    def _do_close_breaker(self, node: Any = "head") -> None:
        chain, _inner = self._chain(node)
        chain.close_breaker()

    # -- cluster verbs -----------------------------------------------------------

    def _sharded(self):
        if not hasattr(self.cluster, "migrate_shard"):
            raise ValueError(
                "migration verbs need a sharded cluster (scenario.groups > 1)"
            )
        return self.cluster

    def _do_migrate_shard(self, shard: Any = "hottest",
                          dst: Any = None) -> None:
        self._sharded().migrate_shard(shard, dst_group=dst)

    def _do_crash_coordinator(self) -> None:
        self._sharded().crash_coordinator()

    # -- media verbs -------------------------------------------------------------

    def _ensure_media(self, replica):
        media = replica.device.media
        if media is None:
            media = replica.device.attach_media(
                seed=zlib.crc32(replica.node_id.encode()),
                protect=self.media_protected,
                tree=self.media_tree if self.media_protected else None,
            )
        return media

    def _target_ranges(self, replica, target: str) -> List[Tuple[int, int]]:
        """Device-absolute (start, length) spans for an injection target."""
        pool = replica.heap.region.pool
        if target == "live":
            base = replica.heap.region.offset
            return [
                (base + off, size)
                for off, size in replica.heap.allocator.live_ranges()
            ]
        if target == "heap":
            region = replica.heap.region
        elif target in pool.regions:
            region = pool.regions[target]
        else:
            raise ValueError(f"unknown media target {target!r}")
        return [(region.offset, region.size)]

    def _do_media_flip(self, node: Any, n: int = 4, target: str = "live") -> None:
        chain, inner = self._chain(node)
        replica = chain.chain[_resolve_index(chain, inner)]
        media = self._ensure_media(replica)
        media.inject_flips(int(n), ranges=self._target_ranges(replica, target))

    def _do_media_dead(self, node: Any, n: int = 1, target: str = "backup") -> None:
        chain, inner = self._chain(node)
        replica = chain.chain[_resolve_index(chain, inner)]
        media = self._ensure_media(replica)
        media.kill_lines(int(n), ranges=self._target_ranges(replica, target))

    def _replica(self, node: Any):
        chain, inner = self._chain(node)
        return chain.chain[_resolve_index(chain, inner)]

    def _snapshot_stale(self, node: Any, snap_ns: float) -> None:
        """Capture one replica's live main-line images (the media_stale
        verb's ammunition) at virtual time ``snap_ns``."""
        replica = self._replica(node)
        media = self._ensure_media(replica)
        heap = replica.heap
        region = heap.region
        live = heap.allocator.live_ranges()
        spans = [(region.offset + off, size) for off, size in live]
        images = media.snapshot_lines(spans)
        self._stale_snaps[(str(node), float(snap_ns))] = {
            "images": images,
            "main": sorted(images),
        }

    def _do_media_stale(
        self, node: Any = "head", n: int = 2, snapshot_at_ns: float = 0.0
    ) -> None:
        """Adversarial consistent replay on one replica: ``n`` live main
        lines that changed since the snapshot leg get their old bytes
        back *with the matching stale CRC forged into the sidecar*.
        Per-line checksums verify the replay clean; only an integrity
        tree still disputes the lines (root-verified repair from the
        backup mirror or a chain peer restores them).  Main lines only —
        the backup copy stays current, so a protected scrub converges."""
        replica = self._replica(node)
        media = self._ensure_media(replica)
        snap = self._stale_snaps.get((str(node), float(snapshot_at_ns)))
        if snap is None:
            raise ValueError(
                "media_stale fired without its snapshot leg "
                f"(node={node!r}, snapshot_at_ns={snapshot_at_ns})"
            )
        durable = replica.device._durable
        images = snap["images"]
        changed = []
        for line in snap["main"]:
            base = line << _LINE_SHIFT
            if bytes(durable[base : base + _CACHE_LINE]) != images[line]:
                changed.append(line)
        if not changed:
            return
        chosen = sorted(
            media.rng.sample(changed, min(int(n), len(changed)))
        )
        media.replay_stale(images, chosen)

    def _do_media_scrub(self, node: Any = None) -> None:
        if node is None:
            chains = (
                [self.cluster] if hasattr(self.cluster, "chain")
                else list(self.cluster.groups)
            )
            targets = [(c, replica) for c in chains for replica in c.chain]
        else:
            chain, inner = self._chain(node)
            targets = [(chain, chain.chain[_resolve_index(chain, inner)])]
        for chain, replica in targets:
            media = replica.device.media
            if media is None or not media.protected:
                continue  # nothing to detect with — scrub cannot help
            scrub_node(chain, replica)
