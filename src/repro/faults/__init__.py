"""repro.faults — seeded nemesis fault injection for the chain.

Composes the :class:`~repro.sim.network.SimNetwork` fault surface
(lossy/duplicating/reordering/corrupting links, partitions, slow
nodes) with the recovery verbs (quick reboot, fail-stop, node
replacement) into declarative, exactly-replayable fault scenarios, and
judges each run with convergence oracles.  See ``docs/FAULTS.md``.
"""

from ..replication.chain import RetryPolicy
from ..sim.network import LinkFaultPolicy, NetStats
from .nemesis import FaultAction, Nemesis, NemesisScenario
from .runner import (
    NemesisResult,
    client_streams,
    demonstrate_unhardened,
    demonstrate_unprotected,
    minimize,
    repro_snippet,
    run_corpus,
    run_scenario,
)
from .scenarios import CLUSTER_CORPUS, CORPUS, MEDIA_CORPUS, scenario_by_name

__all__ = [
    "CLUSTER_CORPUS",
    "CORPUS",
    "FaultAction",
    "LinkFaultPolicy",
    "MEDIA_CORPUS",
    "Nemesis",
    "NemesisResult",
    "NemesisScenario",
    "NetStats",
    "RetryPolicy",
    "client_streams",
    "demonstrate_unhardened",
    "demonstrate_unprotected",
    "minimize",
    "repro_snippet",
    "run_corpus",
    "run_scenario",
    "scenario_by_name",
]
