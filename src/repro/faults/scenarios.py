"""The built-in nemesis corpus.

Each scenario stresses one failure dimension (plus a combined storm);
the runner executes every one under several seeds and demands the same
convergence verdict each time: clients finish, replicas agree, acked
writes survive.  Timings assume the default topology (2 µs hops, write
commit in tens of µs, retransmission ladder starting at 400 µs), so
every injected fault window clears well before the retry budgets of the
hardened configuration run out — a hardened chain must pass all of
these, and the deliberately unhardened one demonstrably cannot.
"""

from __future__ import annotations

from typing import List, Optional

from .nemesis import FaultAction, NemesisScenario

_US = 1_000.0  # ns per µs — action times below read naturally
_MS = 1_000_000.0


CORPUS: List[NemesisScenario] = [
    NemesisScenario(
        name="flaky_link",
        description="head→successor link drops 30% of forwards for 3 ms; "
        "retransmission must re-drive the window",
        actions=(
            FaultAction(10 * _US, "flaky_link",
                        {"src": "head", "dst": 1, "drop_p": 0.3}),
            FaultAction(3 * _MS, "clear_faults"),
        ),
    ),
    NemesisScenario(
        name="duplication_storm",
        description="every link duplicates half its messages; applied_seq "
        "and the dedup table must absorb the echoes",
        actions=(
            FaultAction(0.0, "flaky_link", {"dup_p": 0.5}),
            FaultAction(5 * _MS, "clear_faults"),
        ),
    ),
    NemesisScenario(
        name="reorder_jitter",
        description="40% of messages overtake their successors under "
        "0-20 µs jitter; the sequence-gap guard must hold the prefix",
        actions=(
            FaultAction(0.0, "flaky_link",
                        {"reorder_p": 0.4, "jitter_min_ns": 0.0,
                         "jitter_max_ns": 20 * _US}),
            FaultAction(5 * _MS, "clear_faults"),
        ),
    ),
    NemesisScenario(
        name="corrupt_payload",
        description="a mid link flips bits in 25% of messages; checksums "
        "must catch every one and timeouts must re-drive them",
        actions=(
            FaultAction(10 * _US, "flaky_link",
                        {"src": 1, "dst": 2, "corrupt_p": 0.25}),
            FaultAction(3 * _MS, "clear_faults"),
        ),
    ),
    NemesisScenario(
        name="partition_and_heal",
        description="the chain splits down the middle for ~2 ms, then "
        "heals; stalled windows must retransmit to convergence",
        actions=(
            FaultAction(200 * _US, "partition",
                        {"groups": [[0, 1], [-2, -1]]}),
            FaultAction(2_500 * _US, "heal"),
        ),
    ),
    NemesisScenario(
        name="slow_node",
        description="one mid replica serves every message 100 µs late; "
        "back-pressure and timeouts must tolerate the lag without loss",
        actions=(
            FaultAction(0.0, "slow_node", {"node": 2, "delay_ns": 100 * _US}),
            FaultAction(4 * _MS, "clear_faults"),
        ),
    ),
    NemesisScenario(
        name="crash_and_replace",
        description="a mid replica fail-stops under live traffic and a "
        "spare is spliced in (one view change); the chain keeps its "
        "f-target and no acked write is lost",
        actions=(
            FaultAction(1 * _MS, "crash_replace", {"node": 2}),
        ),
    ),
    NemesisScenario(
        name="head_failover",
        description="the head dies mid-run; the successor promotes, "
        "clients re-drive their unanswered requests against the new head",
        actions=(
            FaultAction(1 * _MS, "fail_stop", {"node": "head"}),
        ),
    ),
    NemesisScenario(
        name="tail_failover",
        description="the tail dies mid-run; its predecessor takes over "
        "acknowledging and no acked write is lost",
        actions=(
            FaultAction(800 * _US, "fail_stop", {"node": "tail"}),
        ),
    ),
    NemesisScenario(
        name="reboot_under_loss",
        description="a mid replica quick-reboots while its inbound link "
        "is lossy; intent-log repair plus retransmission must converge",
        actions=(
            FaultAction(10 * _US, "flaky_link",
                        {"src": "head", "dst": 1, "drop_p": 0.2}),
            FaultAction(600 * _US, "quick_reboot", {"node": 1}),
            FaultAction(3 * _MS, "clear_faults"),
        ),
    ),
    NemesisScenario(
        name="chaos_combo",
        description="default-policy loss + a slow replica + a mid-run "
        "quick reboot, all at once",
        actions=(
            FaultAction(0.0, "flaky_link", {"drop_p": 0.15}),
            FaultAction(500 * _US, "slow_node",
                        {"node": 1, "delay_ns": 50 * _US}),
            FaultAction(1_200 * _US, "quick_reboot", {"node": 2}),
            FaultAction(3_500 * _US, "clear_faults"),
        ),
        ops_per_client=10,
    ),
    NemesisScenario(
        name="overload_storm",
        description="the serving-layer overload drill: a connection storm "
        "(8 clients) hits a chain whose mid replica is slow, the circuit "
        "breaker is forced open mid-storm, and the chain partitions "
        "before the breaker closes; hardened clients must ride the "
        "RETRY-AFTER rejections and retransmission ladders to "
        "convergence before the quiesce",
        actions=(
            FaultAction(50 * _US, "slow_node",
                        {"node": 1, "delay_ns": 80 * _US}),
            FaultAction(150 * _US, "trip_breaker",
                        {"cooldown_ns": 5 * _MS}),
            FaultAction(400 * _US, "partition",
                        {"groups": [[0, 1], [-2, -1]]}),
            FaultAction(700 * _US, "close_breaker", {}),
            FaultAction(1_500 * _US, "heal"),
            FaultAction(1_600 * _US, "clear_faults"),
        ),
        n_clients=8,
        ops_per_client=10,
    ),
    # -- media-fault scenarios (the failure class below fail-stop) --------
    NemesisScenario(
        name="bitrot_scrub",
        description="latent bit flips land in a mid replica's live heap "
        "bytes; the checksum scrub must repair every line from the "
        "backup mirror (or a peer, where the backup lags) before the "
        "convergence oracles look",
        actions=(
            FaultAction(300 * _US, "media_flip",
                        {"node": "mid", "n": 6, "target": "live"}),
            FaultAction(2 * _MS, "media_scrub", {}),
        ),
        media="protected",
    ),
    NemesisScenario(
        name="dead_lines_quarantine",
        description="two cache lines of the head's backup mirror go "
        "uncorrectable (only the head keeps a local backup in kamino "
        "mode); the scrub must quarantine them to spare lines and "
        "restore their content from the main copy",
        actions=(
            FaultAction(400 * _US, "media_dead",
                        {"node": "head", "n": 2, "target": "backup"}),
            FaultAction(2 * _MS, "media_scrub", {"node": "head"}),
        ),
        media="protected",
    ),
    NemesisScenario(
        name="bitrot_reboot_combo",
        description="bit rot on the tail's live bytes while a mid "
        "replica quick-reboots: intent-log repair and the media scrub "
        "must both land, and no acked write may go silently wrong",
        actions=(
            FaultAction(300 * _US, "media_flip",
                        {"node": "tail", "n": 6, "target": "live"}),
            FaultAction(1 * _MS, "quick_reboot", {"node": 1}),
            FaultAction(2_500 * _US, "media_scrub", {}),
        ),
        media="protected",
    ),
    NemesisScenario(
        name="stale_replay_tree",
        description="an adversarial consistent replay on a mid replica: "
        "live main lines that changed after the snapshot leg get their "
        "old bytes back with matching stale CRCs forged into the "
        "sidecar, so per-line checksums verify clean; only the integrity "
        "tree's published root disputes them, and the scrub must repair "
        "every replayed line from the backup mirror before the "
        "convergence oracles look",
        actions=(
            FaultAction(1_500 * _US, "media_stale",
                        {"node": "mid", "n": 4,
                         "snapshot_at_ns": 300 * _US}),
            FaultAction(2_500 * _US, "media_scrub", {}),
        ),
        media="protected",
        tree="streamed",
    ),
    # -- sharded-cluster scenarios (groups > 1 builds a ShardedCluster) ----
    NemesisScenario(
        name="rebalance_during_partition",
        description="a shard migrates from group 0 to group 1 while "
        "group 1's head is partitioned from its chain; copy traffic is "
        "rejected as degraded and must retry to completion after the "
        "heal, with no acked write lost on either group",
        actions=(
            FaultAction(100 * _US, "partition",
                        {"groups": [["g1:0"], ["g1:1", "g1:2", "g1:3"]]}),
            FaultAction(250 * _US, "migrate_shard", {"shard": 0, "dst": 1}),
            FaultAction(2_500 * _US, "heal"),
            FaultAction(2_600 * _US, "clear_faults"),
        ),
        groups=2,
        n_clients=4,
        ops_per_client=14,
    ),
    NemesisScenario(
        name="migrate_then_crash",
        description="the migration coordinator power-fails twice while a "
        "shard is moving under live traffic; the durable cursor must "
        "resume the copy (not restart or corrupt it) and the flip must "
        "still happen exactly once",
        actions=(
            FaultAction(150 * _US, "migrate_shard", {"shard": 1, "dst": 0}),
            FaultAction(400 * _US, "crash_coordinator", {}),
            FaultAction(1_200 * _US, "crash_coordinator", {}),
        ),
        groups=2,
        n_clients=4,
        ops_per_client=14,
        keyspace=8,
    ),
    NemesisScenario(
        name="hot_shard_skew",
        description="zipfian clients hammer a few keys, making one shard "
        "hot; mid-run the hottest shard migrates to the least-loaded "
        "group while the skewed traffic keeps flowing",
        actions=(
            FaultAction(500 * _US, "migrate_shard",
                        {"shard": "hottest", "dst": None}),
        ),
        groups=2,
        n_clients=4,
        ops_per_client=16,
        keyspace=12,
        key_skew=0.95,
    ),
]

#: the media-fault subset — what ``repro nemesis --media`` and the
#: integrity-smoke CI job run
MEDIA_CORPUS: List[NemesisScenario] = [s for s in CORPUS if s.media != "off"]

#: the sharded-cluster subset — what ``repro cluster`` and the
#: cluster-smoke CI job run
CLUSTER_CORPUS: List[NemesisScenario] = [s for s in CORPUS if s.groups > 1]


def scenario_by_name(name: str) -> Optional[NemesisScenario]:
    for scenario in CORPUS:
        if scenario.name == name:
            return scenario
    return None
