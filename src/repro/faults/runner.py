"""Nemesis scenario execution + convergence oracles.

:func:`run_scenario` builds a fresh seeded cluster, arms a scenario's
fault script, drives closed-loop clients through it, then quiesces and
judges.  The verdict is a :class:`NemesisResult` whose ``problems`` list
is empty iff the run converged:

1. **liveness** — every client finished its stream *before* the forced
   quiesce (a hardened chain self-heals via its timeout ladders; the
   unhardened one strands clients the moment a message is lost);
2. **exactly-once accounting** — no operation resolves twice, and every
   rejection (:class:`~repro.errors.ClusterDegraded`, timeout) surfaces
   exactly once;
3. **convergence** — all replicas' logical KV states are byte-identical
   over the live key range;
4. **durability** — for every key, the tail holds the last
   *acknowledged* value, unless a later same-key operation with an
   unknown outcome (a timeout) legitimately superseded it; an operation
   the head definitively rejected must never appear.

Determinism: all randomness flows from ``seed`` (the cluster RNG drives
fault draws, a derived stream RNG builds the workload), so any verdict
replays exactly — :func:`minimize` exploits that to shrink a failing
``(scenario, seed)`` to a minimal repro, and :func:`repro_snippet`
prints the replay program.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..cluster.sharded import ShardedCluster
from ..errors import MediaError
from ..replication.chain import KAMINO, ChainCluster, RetryPolicy
from ..replication.client import ChainClient, run_clients
from ..replication.recovery import settle, scrub_node
from ..sim.network import NetStats
from ..workloads.keydist import ZipfianGenerator
from ..workloads.ycsb import READ, UPDATE, Op
from .nemesis import Nemesis, NemesisScenario
from .scenarios import CORPUS

#: fixed record size for nemesis clusters (stores zero-pad to this)
VALUE_SIZE = 64
#: key-range stride: client ``i`` owns keys ``[i * stride, i * stride + keyspace)``
KEY_STRIDE = 1000


def _value_for(client: int, op_index: int) -> bytes:
    return f"c{client:02d}o{op_index:04d}".encode()


def client_streams(scenario: NemesisScenario, seed: int) -> List[List[Op]]:
    """Deterministic per-(scenario, seed) workload, one stream per
    client, each over a private key range."""
    base = zlib.crc32(scenario.name.encode()) ^ (seed * 0x9E3779B1 & 0xFFFFFFFF)
    streams: List[List[Op]] = []
    for ci in range(scenario.n_clients):
        rng = random.Random((base + ci * 7919) & 0xFFFFFFFF)
        # key_skew > 0 draws offsets zipfian inside the private range, so
        # most traffic lands on a few keys (and therefore a hot shard)
        zipf = (
            ZipfianGenerator(
                scenario.keyspace,
                theta=min(scenario.key_skew, 0.999),
                seed=(base + ci * 7919) & 0xFFFFFFFF,
            )
            if scenario.key_skew > 0 and scenario.keyspace > 1
            else None
        )
        lo = ci * KEY_STRIDE
        ops: List[Op] = []
        for i in range(scenario.ops_per_client):
            offset = (
                zipf.next() % scenario.keyspace
                if zipf is not None
                else rng.randrange(scenario.keyspace)
            )
            key = lo + offset
            if i > 0 and rng.random() < scenario.read_fraction:
                ops.append(Op(READ, key))
            else:
                ops.append(Op(UPDATE, key, _value_for(ci, i)))
        streams.append(ops)
    return streams


@dataclass
class NemesisResult:
    """Verdict + accounting for one (scenario, seed) nemesis run."""

    scenario: str
    seed: int
    mode: str
    hardened: bool
    problems: List[str] = field(default_factory=list)
    completed_ops: int = 0
    total_ops: int = 0
    failed_ops: int = 0
    client_retries: int = 0
    retransmissions: int = 0
    timed_out: int = 0
    degraded_rejections: int = 0
    duplicate_requests: int = 0
    net: Optional[NetStats] = None
    #: sharded-cluster accounting (defaults describe a single chain)
    groups: int = 1
    map_version: Optional[int] = None
    migrations: int = 0
    migrations_aborted: int = 0
    coordinator_crashes: int = 0
    map_refreshes: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        status = "ok" if self.ok else f"FAIL ({len(self.problems)})"
        drops = self.net.dropped if self.net is not None else 0
        return (
            f"{self.scenario:>20} seed={self.seed} [{self.mode}"
            f"{'' if self.hardened else ', unhardened'}] "
            f"ops={self.completed_ops}/{self.total_ops} "
            f"retx={self.retransmissions} dropped={drops} {status}"
        )


def run_scenario(
    scenario: NemesisScenario,
    seed: int = 0,
    mode: str = KAMINO,
    f: int = 2,
    retry: Optional[RetryPolicy] = None,
) -> NemesisResult:
    """One deterministic nemesis run; see the module docstring for the
    oracles.  ``retry=RetryPolicy.disabled()`` runs the deliberately
    unhardened configuration."""
    retry = retry if retry is not None else RetryPolicy()
    result = NemesisResult(
        scenario=scenario.name, seed=seed, mode=mode, hardened=retry.enabled,
        groups=scenario.groups,
    )
    if scenario.groups > 1:
        cluster = ShardedCluster(
            groups=scenario.groups, shards_per_group=scenario.shards_per_group,
            f=f, mode=mode, heap_mb=2, value_size=VALUE_SIZE, seed=seed,
            retry=retry,
        )
    else:
        cluster = ChainCluster(
            f=f, mode=mode, heap_mb=2, value_size=VALUE_SIZE, seed=seed,
            retry=retry,
        )
    if scenario.media != "off":
        protect = scenario.media == "protected"
        tree = scenario.tree if (protect and scenario.tree != "off") else None
        for i, node in enumerate(_all_nodes(cluster)):
            node.device.attach_media(
                seed=seed * 101 + i, protect=protect, tree=tree
            )
    nemesis = Nemesis(cluster, scenario)
    nemesis.arm()
    streams = client_streams(scenario, seed)
    result.total_ops = sum(len(s) for s in streams)
    try:
        clients = run_clients(cluster, streams, raise_on_stuck=False)
    except Exception as exc:  # a protocol crash is itself the verdict
        result.problems.append(f"run raised {type(exc).__name__}: {exc}")
        return result
    # liveness is judged NOW: the hardened chain must have healed itself
    # during the run; the forced quiesce below is only there to let the
    # state oracles see a settled chain
    for c in clients:
        if not c.done:
            result.problems.append(
                f"client {c.client_id} stuck at {c.completed}/{len(c.ops)} ops "
                f"(lost message, nothing retried it)"
            )
    cluster.net.clear_faults()
    try:
        for chain in _chains(cluster):
            settle(chain)
        if isinstance(cluster, ShardedCluster):
            cluster.drain()  # let any still-active migration finish
    except Exception as exc:
        result.problems.append(
            f"post-fault settle raised {type(exc).__name__}: {exc}"
        )
        return result
    if scenario.media == "protected":
        _final_scrub(cluster, result)
    try:
        _judge_state(cluster, clients, result)
    except MediaError as exc:
        # detection, not silence — but a protected run should have
        # repaired everything before the oracles read the heaps
        result.problems.append(
            f"state oracle hit media fault: {type(exc).__name__}: {exc}"
        )
    except Exception as exc:
        if scenario.media == "off":
            raise
        # undetected corruption can wreck structures the oracles walk;
        # for a media run that crash IS the verdict, not a harness bug
        result.problems.append(
            f"state oracle crashed on corrupted state: "
            f"{type(exc).__name__}: {exc}"
        )
    result.completed_ops = sum(c.completed for c in clients)
    result.failed_ops = sum(len(c.failed) for c in clients)
    result.client_retries = sum(c.retries for c in clients)
    result.retransmissions = cluster.retransmissions
    result.timed_out = cluster.timed_out
    result.degraded_rejections = cluster.degraded_rejections
    result.duplicate_requests = cluster.duplicate_requests
    result.net = cluster.net.stats.snapshot()
    if isinstance(cluster, ShardedCluster):
        result.map_version = cluster.map_version
        result.migrations = len(cluster.migration_reports)
        result.migrations_aborted = sum(
            1 for r in cluster.migration_reports if r.aborted
        )
        result.coordinator_crashes = cluster.coordinator_crashes
        result.map_refreshes = sum(c.map_refreshes for c in clients)
    return result


def _all_nodes(cluster) -> List:
    """Every replica node, across all groups if sharded."""
    if isinstance(cluster, ShardedCluster):
        return [node for group in cluster.groups for node in group.chain]
    return list(cluster.chain)


def _chains(cluster) -> List[ChainCluster]:
    if isinstance(cluster, ShardedCluster):
        return list(cluster.groups)
    return [cluster]


def _final_scrub(cluster, result: NemesisResult) -> None:
    """Scrub every replica before judging; in a protected run, all
    injected corruption must end repaired, quarantined+restored, or
    degraded to a typed *lost* state — never silently resident."""
    for chain in _chains(cluster):
        _final_scrub_chain(chain, result)


def _final_scrub_chain(cluster: ChainCluster, result: NemesisResult) -> None:
    for node in cluster.chain:
        media = node.device.media
        if media is None:
            continue
        try:
            scrub_node(cluster, node)
        except MediaError as exc:
            result.problems.append(
                f"scrub on {node.node_id} raised {type(exc).__name__}: {exc}"
            )
            continue
        leftover = [ln for ln in media.bad_lines() if ln not in media.lost]
        if leftover:
            result.problems.append(
                f"media corruption on {node.node_id} survived the final "
                f"scrub undetected-or-unrepaired: lines {leftover[:6]}"
            )
        if media.lost:
            result.problems.append(
                f"{node.node_id} lost lines {sorted(media.lost)[:6]} "
                f"(no surviving copy on mirror or peers)"
            )


def _judge_state(
    cluster, clients: List[ChainClient], result: NemesisResult
) -> None:
    # exactly-once: no double resolutions, no double error surfacing
    for c in clients:
        if c.completed > len(c.ops):
            result.problems.append(
                f"client {c.client_id} resolved {c.completed} ops for "
                f"{len(c.ops)} submissions (double completion)"
            )
        rids = [rid for rid, _op, _err in c.failed]
        if len(rids) != len(set(rids)):
            result.problems.append(
                f"client {c.client_id} surfaced an error more than once "
                f"for the same request"
            )
    # replica convergence over the live range (per group when sharded)
    try:
        cluster.assert_replicas_consistent()
    except AssertionError as exc:
        result.problems.append(f"replica divergence: {exc}")
    if isinstance(cluster, ShardedCluster):
        # cross-shard oracles: every migration terminated, and with no
        # migration in flight each key lives only on its owning group
        if cluster.active_migrations:
            result.problems.append(
                f"migrations never terminated for shards "
                f"{list(cluster.active_migrations)}"
            )
            return
        try:
            cluster.assert_placement_respected()
        except AssertionError as exc:
            result.problems.append(f"placement violated: {exc}")
        tail_state = cluster.merged_tail_state()
    else:
        tail_state = cluster.kv_states()[-1]
    # durability of acknowledged writes at the (owning) tail
    for c in clients:
        _judge_durability(c, tail_state, result)


def _judge_durability(
    client: ChainClient, tail_state: Dict[int, bytes], result: NemesisResult
) -> None:
    """Per key: the tail must hold the last acked value, or the value of
    a later unknown-outcome write to the same key; writes the head
    definitively rejected must never be the surviving value."""
    failed_rids = {rid for rid, _op, _err in client.failed}
    per_key: Dict[int, List[tuple]] = {}
    for rid, op in enumerate(client.ops):
        if rid >= client._next_request:
            break  # never issued (client gave up earlier)
        if op.kind != UPDATE:
            continue
        if rid not in failed_rids:
            outcome = "acked"
        elif rid in client.unknown_rids:
            outcome = "unknown"
        else:
            outcome = "rejected"
        per_key.setdefault(op.key, []).append((rid, op.value, outcome))
    for key, history in per_key.items():
        acked = [i for i, (_r, _v, o) in enumerate(history) if o == "acked"]
        last_acked = acked[-1] if acked else -1
        allowed = set()
        if last_acked >= 0:
            allowed.add(history[last_acked][1].ljust(VALUE_SIZE, b"\x00"))
        else:
            allowed.add(None)
        for i, (_r, value, outcome) in enumerate(history):
            if i > last_acked and outcome == "unknown":
                allowed.add(value.ljust(VALUE_SIZE, b"\x00"))
        actual = tail_state.get(key)
        if actual not in allowed:
            acked_value = history[last_acked][1] if last_acked >= 0 else None
            result.problems.append(
                f"key {key}: tail holds {actual!r:.40}, but the last acked "
                f"write by {client.client_id} was {acked_value!r:.40} "
                f"(acked write lost or phantom write applied)"
            )


def run_corpus(
    scenarios: Optional[List[NemesisScenario]] = None,
    seeds: int = 5,
    mode: str = KAMINO,
    f: int = 2,
    retry: Optional[RetryPolicy] = None,
    quick: bool = False,
) -> List[NemesisResult]:
    """Every scenario × every seed.  ``quick`` trims to a smoke-sized
    sweep (CI): a scenario subset under two seeds."""
    if scenarios is None:
        scenarios = CORPUS
    if quick:
        names = {"flaky_link", "partition_and_heal", "crash_and_replace",
                 "head_failover"}
        scenarios = [s for s in scenarios if s.name in names] or scenarios[:4]
        seeds = min(seeds, 2)
    results = []
    for scenario in scenarios:
        for seed in range(seeds):
            results.append(
                run_scenario(scenario, seed=seed, mode=mode, f=f, retry=retry)
            )
    return results


def minimize(
    scenario: NemesisScenario,
    seed: int,
    mode: str = KAMINO,
    f: int = 2,
    retry: Optional[RetryPolicy] = None,
    budget: int = 40,
) -> NemesisScenario:
    """Greedy delta-debugging of a failing run: drop fault actions and
    halve the workload while the failure reproduces.  Deterministic
    replay makes every probe exact.  Returns the smallest scenario found
    (the input itself if it doesn't fail)."""

    def fails(candidate: NemesisScenario) -> bool:
        return not run_scenario(
            candidate, seed=seed, mode=mode, f=f, retry=retry
        ).ok

    if not fails(scenario):
        return scenario
    current = scenario
    probes = 0
    progress = True
    while progress and probes < budget:
        progress = False
        for i in range(len(current.actions)):
            cand = replace(
                current, actions=current.actions[:i] + current.actions[i + 1:]
            )
            probes += 1
            if fails(cand):
                current = cand
                progress = True
                break
        for attr, floor in (("n_clients", 1), ("ops_per_client", 1)):
            while getattr(current, attr) > floor and probes < budget:
                cand = replace(
                    current, **{attr: max(floor, getattr(current, attr) // 2)}
                )
                probes += 1
                if not fails(cand):
                    break
                current = cand
                progress = True
    return current


def repro_snippet(
    scenario: NemesisScenario, seed: int, mode: str = KAMINO,
    hardened: bool = False,
) -> str:
    """A standalone replay program for a (scenario, seed) verdict."""
    retry = (
        "RetryPolicy()" if hardened else "RetryPolicy.disabled()"
    )
    return (
        "from repro.faults import NemesisScenario, run_scenario\n"
        "from repro.replication.chain import RetryPolicy\n\n"
        f"scenario = NemesisScenario.from_dict({scenario.to_dict()!r})\n"
        f"result = run_scenario(scenario, seed={seed}, mode={mode!r}, "
        f"retry={retry})\n"
        "print(result.summary())\n"
        "for problem in result.problems:\n"
        "    print(' -', problem)\n"
    )


def demonstrate_unprotected(
    scenarios: Optional[List[NemesisScenario]] = None,
    seeds: int = 3,
    mode: str = KAMINO,
) -> Optional[tuple]:
    """The media-fault demonstration with teeth: rerun the protected
    media scenarios with the checksum sidecar disabled (``media`` set to
    ``"unprotected"``) and find one (scenario, seed) where the injected
    corruption goes silently wrong — divergent replicas, a corrupted
    acked value at the tail, or an oracle crash.  Returns
    ``(minimized_scenario, seed, snippet)``; ``None`` if everything
    (surprisingly) passed."""
    from .scenarios import MEDIA_CORPUS

    pool = scenarios if scenarios is not None else MEDIA_CORPUS
    for scenario in pool:
        bare = replace(scenario, media="unprotected")
        for seed in range(seeds):
            verdict = run_scenario(bare, seed=seed, mode=mode)
            if not verdict.ok:
                small = minimize(bare, seed, mode=mode)
                return small, seed, repro_snippet(small, seed, mode=mode,
                                                  hardened=True)
    return None


def demonstrate_unhardened(
    scenarios: Optional[List[NemesisScenario]] = None,
    seeds: int = 3,
    mode: str = KAMINO,
) -> Optional[tuple]:
    """Find one (scenario, seed) the unhardened configuration fails,
    minimize it, and return ``(minimized_scenario, seed, snippet)`` —
    ``None`` if (surprisingly) everything passed."""
    disabled = RetryPolicy.disabled()
    for scenario in (scenarios if scenarios is not None else CORPUS):
        for seed in range(seeds):
            verdict = run_scenario(scenario, seed=seed, mode=mode, retry=disabled)
            if not verdict.ok:
                small = minimize(scenario, seed, mode=mode, retry=disabled)
                return small, seed, repro_snippet(small, seed, mode=mode)
    return None
