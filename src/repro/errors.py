"""Exception hierarchy for the Kamino-Tx reproduction.

Every package-specific error derives from :class:`ReproError` so callers can
catch the whole family with one clause.  Errors are grouped by subsystem:
device-level faults, heap/allocator faults, transaction faults, and
replication faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# NVM device / pool errors
# ---------------------------------------------------------------------------


class NVMError(ReproError):
    """Base class for simulated-device failures."""


class OutOfBoundsError(NVMError):
    """An access touched bytes outside the device or region."""


class DeviceCrashedError(NVMError):
    """The device is in the crashed state; reopen the pool to recover."""


class PoolCorruptionError(NVMError):
    """Pool header failed validation (bad magic, version, or checksum)."""


class MediaError(NVMError):
    """Base class for media-level faults: the device's durable bytes
    themselves decayed (bit flips, stuck-at bits, dead lines), as
    opposed to volatile-overlay loss at a crash."""


class UncorrectableMediaError(MediaError):
    """A read touched a cache line the media reports as uncorrectable
    (a dead line); the data cannot be returned.  The scrubber quarantines
    such lines and restores their content from the surviving copy."""

    def __init__(self, message: str, lines=()):
        super().__init__(message)
        self.lines = tuple(lines)


class IntegrityError(MediaError):
    """A checksum-protected line failed verification: its durable bytes
    no longer match the checksum recorded at the last legitimate persist.
    Raised by recovery and scrub paths that verify before acting; silent
    corruption is never propagated past a verify point."""

    def __init__(self, message: str, lines=()):
        super().__init__(message)
        self.lines = tuple(lines)


class BothCopiesLostError(MediaError):
    """Both the main copy and its backup (and any reachable peer) of a
    line are corrupt or dead: the data is unrecoverable locally.  The
    engine degrades with this typed error instead of returning garbage;
    chain deployments fall back to replica state transfer."""

    def __init__(self, message: str, lines=()):
        super().__init__(message)
        self.lines = tuple(lines)


class IntegrityTreeError(MediaError):
    """Base class for integrity-tree failures: the Merkle tree over the
    pool's line CRCs could not be maintained, recovered, or verified.
    Distinct from :class:`IntegrityError` (a single line failing its
    own checksum) — tree errors are about the *binding* of lines to the
    published root."""


class RootMismatchError(IntegrityTreeError):
    """The integrity tree's rebuilt root does not match the published
    root, or a scrub/recovery pass left lines the tree still disputes.
    Consistent multi-line corruption (e.g. a stale-CRC replay that fools
    per-line checksums) surfaces here instead of silently verifying."""

    def __init__(self, message: str, lines=()):
        super().__init__(message)
        self.lines = tuple(lines)


class RingCorruptionError(IntegrityError, PoolCorruptionError):
    """A persistent-ring record *behind* the durable produce index failed
    its CRC — mid-ring media corruption, not a torn append (a torn tail
    is truncated silently).  Carries the failing record's region offset
    and logical index for the repair path."""

    def __init__(self, message: str, offset: int = -1, record_index: int = -1):
        super().__init__(message)
        self.offset = offset
        self.record_index = record_index


# ---------------------------------------------------------------------------
# Heap / allocator errors
# ---------------------------------------------------------------------------


class HeapError(ReproError):
    """Base class for persistent-heap failures."""


class OutOfMemoryError(HeapError):
    """The allocator could not satisfy an allocation request."""


class InvalidPointerError(HeapError):
    """A persistent pointer does not reference a live allocation."""


class DoubleFreeError(HeapError):
    """An allocation was freed twice."""


class SchemaError(HeapError):
    """Persistent struct schema is malformed or violated."""


# ---------------------------------------------------------------------------
# Transaction errors
# ---------------------------------------------------------------------------


class TxError(ReproError):
    """Base class for transaction failures."""


class TxAborted(TxError):
    """Raised inside a transaction body to abort it; also the state after."""


class NoActiveTransactionError(TxError):
    """A transactional operation was attempted outside a transaction."""


class NestedTransactionError(TxError):
    """A transaction was begun while another is active on the same thread."""


class WriteIntentError(TxError):
    """An object was written without a prior declared write intent (TX_ADD)."""


class LogFullError(TxError):
    """The intent/undo log ran out of space for this transaction."""


class LockTimeoutError(TxError):
    """Could not acquire an object lock within the configured timeout."""


class RecoveryError(TxError):
    """Crash recovery detected an inconsistency it cannot repair."""


# ---------------------------------------------------------------------------
# Replication errors
# ---------------------------------------------------------------------------


class ReplicationError(ReproError):
    """Base class for replication failures."""


class StaleViewError(ReplicationError):
    """A message carried a viewID older than the replica's current view."""


class ChainConfigError(ReplicationError):
    """The chain was configured with too few replicas for its fault target."""


class NodeFailedError(ReplicationError):
    """An operation was routed to a failed replica."""


class ClusterDegraded(ReplicationError):
    """The chain is below its write quorum (or its circuit breaker is
    open after repeated delivery failures); the write was rejected
    without execution.  Surfaced to the client exactly once per
    rejected operation."""


class RequestTimeoutError(ReplicationError):
    """The head exhausted its retransmission budget for a forwarded
    transaction; the outcome is unknown (it may have partially
    propagated).  Retries are safe: procedures are idempotent and the
    head deduplicates by ``(client_id, request_id)``."""


class ClientStuckError(ReplicationError):
    """``run_clients`` drained the simulator but one or more closed-loop
    clients never completed their streams — an operation was dropped
    with retries disabled, or the cluster deadlocked."""

    def __init__(self, message: str, client_ids=()):
        super().__init__(message)
        self.client_ids = tuple(client_ids)


# ---------------------------------------------------------------------------
# Sharded-cluster errors
# ---------------------------------------------------------------------------


class ClusterConfigError(ReplicationError):
    """A sharded cluster was configured inconsistently (no groups, a
    shard assigned to a missing group, duplicate shard ids, ...)."""


class StaleShardMapError(ReplicationError):
    """A request was routed with a shard-map version older than the
    placement service's current one — the cluster's analogue of
    :class:`StaleViewError`.  The typed redirect carries the current
    version so the client can refresh its cached map and re-route."""

    def __init__(self, message: str, current_version: int = 0):
        super().__init__(message)
        self.current_version = current_version


class ShardMigrationError(ReplicationError):
    """A shard migration could not start or make progress (unknown
    shard, source and destination coincide, a migration for the shard
    is already running, ...)."""


# ---------------------------------------------------------------------------
# Serving-layer errors
# ---------------------------------------------------------------------------


class ServeError(ReproError):
    """Base class for serving-layer failures (the network front door)."""


class ProtocolError(ServeError):
    """A connection sent bytes the RESP-like grammar cannot parse, or a
    well-formed command with the wrong shape (unknown verb, bad arity).
    Surfaced on the wire as ``-ERR`` and the connection keeps going —
    one malformed command must not poison the pipeline behind it."""


class AdmissionRejected(ServeError):
    """Admission control shed the request: the cluster is degraded (its
    circuit breaker is open or it is below write quorum) or the server
    is at its in-flight/queue bounds.  Carries ``retry_after_ns``, the
    server's best estimate of when capacity returns — surfaced on the
    wire as ``-RETRY-AFTER <ns>`` so clients back off instead of
    hammering a breaker that is already open."""

    def __init__(self, message: str, retry_after_ns: float = 0.0):
        super().__init__(message)
        self.retry_after_ns = retry_after_ns


class ProcedureError(ServeError):
    """A durable procedure could not run (unknown procedure name, bad
    arguments, a step raised)."""


class ProcedureResumed(ProcedureError):
    """A procedure id was re-submitted after the original already ran to
    completion; the stored result is replayed instead of re-executing.
    This is the exactly-once delivery path, typed so the serving layer
    can tell a replayed result from a first execution."""

    def __init__(self, message: str, pid: str = "", result=None):
        super().__init__(message)
        self.pid = pid
        self.result = result


class ProcedureAborted(ProcedureError):
    """A durable procedure gave up before completing (a step exhausted
    its retries against the cluster); its frames stay in the log and a
    re-submission resumes from the last persisted step."""
