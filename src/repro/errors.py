"""Exception hierarchy for the Kamino-Tx reproduction.

Every package-specific error derives from :class:`ReproError` so callers can
catch the whole family with one clause.  Errors are grouped by subsystem:
device-level faults, heap/allocator faults, transaction faults, and
replication faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# NVM device / pool errors
# ---------------------------------------------------------------------------


class NVMError(ReproError):
    """Base class for simulated-device failures."""


class OutOfBoundsError(NVMError):
    """An access touched bytes outside the device or region."""


class DeviceCrashedError(NVMError):
    """The device is in the crashed state; reopen the pool to recover."""


class PoolCorruptionError(NVMError):
    """Pool header failed validation (bad magic, version, or checksum)."""


# ---------------------------------------------------------------------------
# Heap / allocator errors
# ---------------------------------------------------------------------------


class HeapError(ReproError):
    """Base class for persistent-heap failures."""


class OutOfMemoryError(HeapError):
    """The allocator could not satisfy an allocation request."""


class InvalidPointerError(HeapError):
    """A persistent pointer does not reference a live allocation."""


class DoubleFreeError(HeapError):
    """An allocation was freed twice."""


class SchemaError(HeapError):
    """Persistent struct schema is malformed or violated."""


# ---------------------------------------------------------------------------
# Transaction errors
# ---------------------------------------------------------------------------


class TxError(ReproError):
    """Base class for transaction failures."""


class TxAborted(TxError):
    """Raised inside a transaction body to abort it; also the state after."""


class NoActiveTransactionError(TxError):
    """A transactional operation was attempted outside a transaction."""


class NestedTransactionError(TxError):
    """A transaction was begun while another is active on the same thread."""


class WriteIntentError(TxError):
    """An object was written without a prior declared write intent (TX_ADD)."""


class LogFullError(TxError):
    """The intent/undo log ran out of space for this transaction."""


class LockTimeoutError(TxError):
    """Could not acquire an object lock within the configured timeout."""


class RecoveryError(TxError):
    """Crash recovery detected an inconsistency it cannot repair."""


# ---------------------------------------------------------------------------
# Replication errors
# ---------------------------------------------------------------------------


class ReplicationError(ReproError):
    """Base class for replication failures."""


class StaleViewError(ReplicationError):
    """A message carried a viewID older than the replica's current view."""


class ChainConfigError(ReplicationError):
    """The chain was configured with too few replicas for its fault target."""


class NodeFailedError(ReplicationError):
    """An operation was routed to a failed replica."""


class ClusterDegraded(ReplicationError):
    """The chain is below its write quorum (or its circuit breaker is
    open after repeated delivery failures); the write was rejected
    without execution.  Surfaced to the client exactly once per
    rejected operation."""


class RequestTimeoutError(ReplicationError):
    """The head exhausted its retransmission budget for a forwarded
    transaction; the outcome is unknown (it may have partially
    propagated).  Retries are safe: procedures are idempotent and the
    head deduplicates by ``(client_id, request_id)``."""


class ClientStuckError(ReplicationError):
    """``run_clients`` drained the simulator but one or more closed-loop
    clients never completed their streams — an operation was dropped
    with retries disabled, or the cluster deadlocked."""

    def __init__(self, message: str, client_ids=()):
        super().__init__(message)
        self.client_ids = tuple(client_ids)
