"""Persistent doubly-linked list — the paper's running example (Figure 4).

Each node is a persistent object with native fields and persistent
pointers; every mutation is a transaction touching the small set of
neighbouring nodes, which is exactly the fine-grained multi-object
update pattern Kamino-Tx targets.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..heap import FixedStr, Float64, Int64, PNULL, PPtr, PersistentHeap, PersistentStruct


class ListNode(PersistentStruct):
    """Mirror of the paper's node: type, key, value, next, prev."""

    fields = [
        ("type", Int64()),
        ("key", Int64()),
        ("value", Float64()),
        ("next", PPtr()),
        ("prev", PPtr()),
    ]


class ListRoot(PersistentStruct):
    """Heap root holding the list's head/tail pointers and length."""

    fields = [("head", PPtr()), ("tail", PPtr()), ("length", Int64())]


class PersistentList:
    """A sorted (by key) doubly-linked list of :class:`ListNode`.

    All operations are transactions; the caller may also open an outer
    transaction to compose several operations atomically (flat nesting).
    """

    def __init__(self, heap: PersistentHeap, root: ListRoot):
        self.heap = heap
        self.root = root

    @classmethod
    def create(cls, heap: PersistentHeap) -> "PersistentList":
        with heap.transaction():
            root = heap.alloc(ListRoot)
        return cls(heap, root)

    @classmethod
    def open(cls, heap: PersistentHeap, root_oid: int) -> "PersistentList":
        return cls(heap, heap.deref(root_oid, ListRoot))

    # -- operations (the four transaction shapes of Figure 4) ----------------

    def insert(self, key: int, value: float) -> ListNode:
        """TxInsert: splice a new node in sorted position."""
        with self.heap.transaction():
            prev, current = self._find_position(key)
            new = self.heap.alloc(ListNode)
            new.key = key
            new.value = value
            new.next = current.oid if current is not None else PNULL
            new.prev = prev.oid if prev is not None else PNULL
            if prev is not None:
                prev.tx_add()
                prev.next = new.oid
            if current is not None:
                current.tx_add()
                current.prev = new.oid
            self.root.tx_add()
            if prev is None:
                self.root.head = new.oid
            if current is None:
                self.root.tail = new.oid
            self.root.length = self.root.length + 1
        return new

    def delete(self, key: int) -> bool:
        """TxDelete: unlink and free the first node with ``key``."""
        with self.heap.transaction():
            node = self._find(key)
            if node is None:
                return False
            prev = self.heap.deref(node.prev, ListNode)
            nxt = self.heap.deref(node.next, ListNode)
            self.root.tx_add()
            if prev is not None:
                prev.tx_add()
                prev.next = node.next
            else:
                self.root.head = node.next
            if nxt is not None:
                nxt.tx_add()
                nxt.prev = node.prev
            else:
                self.root.tail = node.prev
            self.root.length = self.root.length - 1
            self.heap.free(node)
            return True

    def lookup(self, key: int) -> Optional[float]:
        """TxLookup: read-only transaction (takes read locks)."""
        with self.heap.transaction():
            node = self._find(key)
            return node.value if node is not None else None

    def update(self, key: int, value: float) -> bool:
        """TxUpdate: modify one node's value field in place."""
        with self.heap.transaction():
            node = self._find(key)
            if node is None:
                return False
            node.tx_add()
            node.value = value
            return True

    # -- traversal --------------------------------------------------------------

    def _find(self, key: int) -> Optional[ListNode]:
        node = self.heap.deref(self.root.head, ListNode)
        while node is not None:
            if node.key == key:
                return node
            if node.key > key:
                return None
            node = self.heap.deref(node.next, ListNode)
        return None

    def _find_position(self, key: int):
        """(prev, current) such that prev.key <= key < current.key."""
        prev = None
        node = self.heap.deref(self.root.head, ListNode)
        while node is not None and node.key <= key:
            prev = node
            node = self.heap.deref(node.next, ListNode)
        return prev, node

    def keys(self) -> List[int]:
        return [n.key for n in self]

    def __iter__(self) -> Iterator[ListNode]:
        node = self.heap.deref(self.root.head, ListNode)
        while node is not None:
            yield node
            node = self.heap.deref(node.next, ListNode)

    def __len__(self) -> int:
        return self.root.length

    def check_invariants(self) -> None:
        """Assert forward/backward consistency and sortedness (tests)."""
        forward = [n.oid for n in self]
        backward = []
        node = self.heap.deref(self.root.tail, ListNode)
        while node is not None:
            backward.append(node.oid)
            node = self.heap.deref(node.prev, ListNode)
        assert forward == list(reversed(backward)), "next/prev links disagree"
        keys = self.keys()
        assert keys == sorted(keys), "list not sorted"
        assert len(forward) == self.root.length, "length counter wrong"
