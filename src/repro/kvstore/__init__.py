"""Persistent data structures built on the transactional heap."""

from .btree import BPlusTree, BTreeMeta, DEFAULT_FANOUT, node_class
from .hashtable import HashMeta, PersistentHashTable
from .kv import KVMeta, KVStore
from .linkedlist import ListNode, ListRoot, PersistentList
from .ring import PersistentRing

__all__ = [
    "BPlusTree",
    "BTreeMeta",
    "DEFAULT_FANOUT",
    "HashMeta",
    "KVMeta",
    "KVStore",
    "ListNode",
    "ListRoot",
    "PersistentHashTable",
    "PersistentList",
    "PersistentRing",
    "node_class",
]
