"""Persistent open-addressing hash table.

A fixed-capacity, linear-probing table whose buckets live in page blobs.
Each mutation rewrites one 24-byte bucket — but an undo-logging engine
still copies the *whole 4 KiB page* at ``TX_ADD``, the exact
amplification the paper's introduction calls out (MongoDB logging an
entire document for a few changed bytes).  Kamino logs a 32-byte intent
regardless of page size, so this structure is the starkest contrast
between the schemes.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from ..errors import HeapError
from ..heap import Array, Int64, PNULL, PPtr, PersistentHeap, PersistentStruct

MAX_PAGES = 64
BUCKETS_PER_PAGE = 128
_BUCKET_SIZE = 24  # key u64, vptr u64, state u64
_PAGE_BYTES = BUCKETS_PER_PAGE * _BUCKET_SIZE

_EMPTY = 0
_USED = 1
_TOMB = 2

_MAX_LOAD = 0.85


def _mix(key: int) -> int:
    """Fibonacci hashing; avalanches low-entropy integer keys."""
    return (key * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)


class HashMeta(PersistentStruct):
    """Persistent header: page directory, capacity, live count."""

    fields = [
        ("npages", Int64()),
        ("capacity", Int64()),
        ("count", Int64()),
        ("pages", Array(PPtr(), MAX_PAGES)),
    ]


class PersistentHashTable:
    """Maps int64 keys to persistent pointers (or small ints).

    Capacity is fixed at creation; inserts beyond ``0.85 × capacity``
    raise :class:`~repro.errors.HeapError` (no online resize — the
    paper's backup look-up table is likewise statically sized).
    """

    def __init__(self, heap: PersistentHeap, meta: HashMeta):
        self.heap = heap
        self.meta = meta
        self.capacity = meta.capacity
        self._page_oids: List[int] = meta.pages[: meta.npages]

    @classmethod
    def create(cls, heap: PersistentHeap, capacity_hint: int = 1024) -> "PersistentHashTable":
        npages = max(1, -(-capacity_hint // BUCKETS_PER_PAGE))
        if npages > MAX_PAGES:
            raise HeapError(f"capacity {capacity_hint} exceeds {MAX_PAGES} pages")
        with heap.transaction():
            meta = heap.alloc(HashMeta)
            oids = [heap.alloc_blob(_PAGE_BYTES) for _ in range(npages)]
            meta.npages = npages
            meta.capacity = npages * BUCKETS_PER_PAGE
            meta.pages = oids + [PNULL] * (MAX_PAGES - npages)
        return cls(heap, meta)

    @classmethod
    def open(cls, heap: PersistentHeap, meta_oid: int) -> "PersistentHashTable":
        return cls(heap, heap.deref(meta_oid, HashMeta))

    # -- bucket access ---------------------------------------------------------

    def _bucket_addr(self, index: int) -> Tuple[int, int]:
        return self._page_oids[index // BUCKETS_PER_PAGE], (
            index % BUCKETS_PER_PAGE
        ) * _BUCKET_SIZE

    def _read_bucket(self, index: int) -> Tuple[int, int, int]:
        oid, off = self._bucket_addr(index)
        raw = self.heap.read_blob_at(oid, off, _BUCKET_SIZE)
        return struct.unpack("<QQQ", raw)

    def _write_bucket(self, index: int, key: int, vptr: int, state: int) -> None:
        oid, off = self._bucket_addr(index)
        self.heap.write_blob_at(oid, off, struct.pack("<QQQ", key, vptr, state))

    def _probe(self, key: int) -> Iterator[int]:
        start = _mix(key) % self.capacity
        for i in range(self.capacity):
            yield (start + i) % self.capacity

    # -- operations ----------------------------------------------------------------

    def put(self, key: int, vptr: int) -> Optional[int]:
        """Insert or replace; returns the previous value if replaced."""
        with self.heap.transaction():
            if self.meta.count >= _MAX_LOAD * self.capacity:
                raise HeapError("hash table over load factor; size it larger")
            first_free = None
            for idx in self._probe(key):
                bkey, bval, state = self._read_bucket(idx)
                if state == _USED and bkey == key:
                    self._write_bucket(idx, key, vptr, _USED)
                    return bval
                if state == _TOMB and first_free is None:
                    first_free = idx
                if state == _EMPTY:
                    target = first_free if first_free is not None else idx
                    self._write_bucket(target, key, vptr, _USED)
                    self.meta.tx_add()
                    self.meta.count = self.meta.count + 1
                    return None
            raise HeapError("hash table full")  # pragma: no cover

    def get(self, key: int) -> Optional[int]:
        with self.heap.transaction():
            for idx in self._probe(key):
                bkey, bval, state = self._read_bucket(idx)
                if state == _EMPTY:
                    return None
                if state == _USED and bkey == key:
                    return bval
            return None

    def delete(self, key: int) -> Optional[int]:
        """Tombstone ``key``; returns its value, or None if absent."""
        with self.heap.transaction():
            for idx in self._probe(key):
                bkey, bval, state = self._read_bucket(idx)
                if state == _EMPTY:
                    return None
                if state == _USED and bkey == key:
                    self._write_bucket(idx, 0, 0, _TOMB)
                    self.meta.tx_add()
                    self.meta.count = self.meta.count - 1
                    return bval
            return None

    def __len__(self) -> int:
        return self.meta.count

    def items(self) -> Iterator[Tuple[int, int]]:
        for idx in range(self.capacity):
            bkey, bval, state = self._read_bucket(idx)
            if state == _USED:
                yield bkey, bval
