"""Crash-consistent persistent ring buffer of variable-size records.

Chain replicas "buffer such calls in an input queue in non-volatile
memory before the receipt is acknowledged upstream" (§5.1); this is that
queue as a reusable structure.  It is engine-independent — the ring *is*
its own atomicity mechanism:

* a record is ``[length u32][crc u32][payload][pad to 8]``, written and
  flushed *before* the producer index advances;
* the producer/consumer indices are 8-byte words, each updated with a
  single power-fail-atomic durable store;
* on reopen, a record at the tail whose CRC fails (torn append) is
  simply not visible, because the durable tail still points before it.

Wraparound uses a ``SKIP`` sentinel record when a record does not fit
contiguously before the end of the data area.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, List, Optional

from ..errors import HeapError, PoolCorruptionError
from ..nvm.pool import PmemRegion

RING_MAGIC = 0x52494E47  # "RING"

_HDR_FMT = "<IIQQ"  # magic, reserved, produce_off, consume_off
_HDR_SIZE = 64  # one cache line: indices are word-atomic
_REC_HDR = struct.Struct("<II")  # length, crc32
_SKIP = 0xFFFFFFFF


def _pad(n: int) -> int:
    return (n + 7) // 8 * 8


class PersistentRing:
    """Single-producer/single-consumer durable FIFO over one region."""

    def __init__(self, region: PmemRegion):
        if region.size < _HDR_SIZE + 64:
            raise HeapError("ring region too small")
        self.region = region
        self._data_size = region.size - _HDR_SIZE
        self._produce = 0  # logical offsets into the data area
        self._consume = 0

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def create(cls, region: PmemRegion) -> "PersistentRing":
        ring = cls(region)
        region.write_and_flush(0, struct.pack(_HDR_FMT, RING_MAGIC, 0, 0, 0))
        return ring

    @classmethod
    def open(cls, region: PmemRegion) -> "PersistentRing":
        raw = region.read(0, struct.calcsize(_HDR_FMT))
        magic, _r, produce, consume = struct.unpack(_HDR_FMT, raw)
        if magic != RING_MAGIC:
            raise PoolCorruptionError("region holds no ring header")
        ring = cls(region)
        ring._produce = produce
        ring._consume = consume
        return ring

    # -- geometry ---------------------------------------------------------------

    def _addr(self, logical: int) -> int:
        return _HDR_SIZE + logical % self._data_size

    @property
    def used_bytes(self) -> int:
        return self._produce - self._consume

    @property
    def free_bytes(self) -> int:
        return self._data_size - self.used_bytes

    def __len__(self) -> int:
        n = 0
        for _ in self.peek_all():
            n += 1
        return n

    # -- producer ----------------------------------------------------------------

    def append(self, payload: bytes) -> None:
        """Durably enqueue ``payload``; visible only once fully written."""
        need = _pad(_REC_HDR.size + len(payload))
        if need > self._data_size // 2:
            raise HeapError(f"record of {len(payload)} bytes too large for this ring")
        room_to_end = self._data_size - (self._produce % self._data_size)
        total = need + (room_to_end if room_to_end < need else 0)
        if total > self.free_bytes:
            raise HeapError("ring full; consumer has fallen behind")
        if room_to_end < need:
            self._write_skip(room_to_end)
        addr = self._addr(self._produce)
        record = _REC_HDR.pack(len(payload), zlib.crc32(payload)) + payload
        self.region.write(addr, record)
        self.region.flush(addr, len(record))
        self.region.pool.device.fence()
        self._advance_produce(need)

    def _write_skip(self, room: int) -> None:
        """Burn the space to the end of the data area with a sentinel."""
        addr = self._addr(self._produce)
        self.region.write(addr, _REC_HDR.pack(_SKIP, 0))
        self.region.flush(addr, _REC_HDR.size)
        self.region.pool.device.fence()
        self._advance_produce(room)

    def _advance_produce(self, by: int) -> None:
        self._produce += by
        self.region.write(8, struct.pack("<Q", self._produce))
        self.region.flush(8, 8)
        self.region.pool.device.fence()

    # -- consumer ------------------------------------------------------------------

    def _read_record(self, logical: int) -> Optional[tuple]:
        """(payload, next_logical) at ``logical``, or None for torn data."""
        if logical >= self._produce:
            return None
        addr = self._addr(logical)
        length, crc = _REC_HDR.unpack(self.region.read(addr, _REC_HDR.size))
        if length == _SKIP:
            room = self._data_size - logical % self._data_size
            return self._read_record(logical + room)
        if length > self._data_size:
            raise PoolCorruptionError("ring record length corrupt")
        payload = self.region.read(addr + _REC_HDR.size, length)
        if zlib.crc32(payload) != crc:
            raise PoolCorruptionError("ring record failed its checksum")
        return payload, logical + _pad(_REC_HDR.size + length)

    def consume(self) -> Optional[bytes]:
        """Dequeue the oldest record durably; None if empty."""
        rec = self._read_record(self._consume)
        if rec is None:
            return None
        payload, nxt = rec
        self._consume = nxt
        self.region.write(16, struct.pack("<Q", self._consume))
        self.region.flush(16, 8)
        self.region.pool.device.fence()
        return payload

    def peek_all(self) -> Iterator[bytes]:
        """Iterate pending records without consuming them."""
        logical = self._consume
        while True:
            rec = self._read_record(logical)
            if rec is None:
                return
            payload, logical = rec
            yield payload

    def drain(self) -> List[bytes]:
        out = []
        while True:
            item = self.consume()
            if item is None:
                return out
            out.append(item)
