"""Crash-consistent persistent ring buffer of variable-size records.

Chain replicas "buffer such calls in an input queue in non-volatile
memory before the receipt is acknowledged upstream" (§5.1); this is that
queue as a reusable structure.  It is engine-independent — the ring *is*
its own atomicity mechanism:

* a record is ``[length u32][crc u32][payload][pad to 8]``, written and
  flushed *before* the producer index advances;
* the producer/consumer indices are 8-byte words, each updated with a
  single power-fail-atomic durable store;
* on reopen, a record at the tail whose CRC fails (torn append) is
  simply not visible, because the durable tail still points before it.

Because the produce index only advances after the record it covers is
flushed and fenced, a CRC failure *below* the durable produce index is
not a torn append — it is media corruption.  The consumer classifies the
two cases: a failing record whose extent ends exactly at the produce
index is treated as a torn tail (the produce index is durably truncated
back and the record dropped); any other failure raises
:class:`~repro.errors.RingCorruptionError` carrying the record's region
offset and logical index, and :meth:`PersistentRing.scrub` can route it
through a repair callback (peer/backup bytes) instead.

Wraparound uses a ``SKIP`` sentinel record when a record does not fit
contiguously before the end of the data area.
"""

from __future__ import annotations

import struct
import zlib
from typing import Callable, Iterator, List, Optional

from ..errors import HeapError, PoolCorruptionError, RingCorruptionError
from ..nvm.pool import PmemRegion

RING_MAGIC = 0x52494E47  # "RING"

_HDR_FMT = "<IIQQ"  # magic, reserved, produce_off, consume_off
_HDR_SIZE = 64  # one cache line: indices are word-atomic
_REC_HDR = struct.Struct("<II")  # length, crc32
_SKIP = 0xFFFFFFFF


def _pad(n: int) -> int:
    return (n + 7) // 8 * 8


class PersistentRing:
    """Single-producer/single-consumer durable FIFO over one region."""

    def __init__(self, region: PmemRegion):
        if region.size < _HDR_SIZE + 64:
            raise HeapError("ring region too small")
        self.region = region
        self._data_size = region.size - _HDR_SIZE
        self._produce = 0  # logical offsets into the data area
        self._consume = 0

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def create(cls, region: PmemRegion) -> "PersistentRing":
        ring = cls(region)
        region.write_and_flush(0, struct.pack(_HDR_FMT, RING_MAGIC, 0, 0, 0))
        return ring

    @classmethod
    def open(cls, region: PmemRegion) -> "PersistentRing":
        raw = region.read(0, struct.calcsize(_HDR_FMT))
        magic, _r, produce, consume = struct.unpack(_HDR_FMT, raw)
        if magic != RING_MAGIC:
            raise PoolCorruptionError("region holds no ring header")
        ring = cls(region)
        ring._produce = produce
        ring._consume = consume
        return ring

    # -- geometry ---------------------------------------------------------------

    def _addr(self, logical: int) -> int:
        return _HDR_SIZE + logical % self._data_size

    @property
    def used_bytes(self) -> int:
        return self._produce - self._consume

    @property
    def free_bytes(self) -> int:
        return self._data_size - self.used_bytes

    def __len__(self) -> int:
        n = 0
        for _ in self.peek_all():
            n += 1
        return n

    # -- producer ----------------------------------------------------------------

    def append(self, payload: bytes) -> None:
        """Durably enqueue ``payload``; visible only once fully written."""
        need = _pad(_REC_HDR.size + len(payload))
        if need > self._data_size // 2:
            raise HeapError(f"record of {len(payload)} bytes too large for this ring")
        room_to_end = self._data_size - (self._produce % self._data_size)
        total = need + (room_to_end if room_to_end < need else 0)
        if total > self.free_bytes:
            raise HeapError("ring full; consumer has fallen behind")
        if room_to_end < need:
            self._write_skip(room_to_end)
        addr = self._addr(self._produce)
        record = _REC_HDR.pack(len(payload), zlib.crc32(payload)) + payload
        self.region.write(addr, record)
        self.region.flush(addr, len(record))
        self.region.pool.device.fence()
        self._advance_produce(need)

    def _write_skip(self, room: int) -> None:
        """Burn the space to the end of the data area with a sentinel."""
        addr = self._addr(self._produce)
        self.region.write(addr, _REC_HDR.pack(_SKIP, 0))
        self.region.flush(addr, _REC_HDR.size)
        self.region.pool.device.fence()
        self._advance_produce(room)

    def _advance_produce(self, by: int) -> None:
        self._produce += by
        self.region.write(8, struct.pack("<Q", self._produce))
        self.region.flush(8, 8)
        self.region.pool.device.fence()

    # -- consumer ------------------------------------------------------------------

    def _read_record(self, logical: int) -> Optional[tuple]:
        """(payload, next_logical) at ``logical``, or None for torn data."""
        if logical >= self._produce:
            return None
        addr = self._addr(logical)
        length, crc = _REC_HDR.unpack(self.region.read(addr, _REC_HDR.size))
        if length == _SKIP:
            room = self._data_size - logical % self._data_size
            return self._read_record(logical + room)
        if length > self._data_size:
            raise RingCorruptionError(
                f"ring record length corrupt at region offset {addr}",
                offset=addr,
                record_index=self._index_of(logical),
            )
        payload = self.region.read(addr + _REC_HDR.size, length)
        if zlib.crc32(payload) != crc:
            nxt = logical + _pad(_REC_HDR.size + length)
            if nxt == self._produce:
                # torn tail: the failing record is the last one the
                # produce index covers — truncate it away durably
                self._truncate_tail(logical)
                return None
            raise RingCorruptionError(
                f"ring record failed its checksum "
                f"(record {self._index_of(logical)} at region offset {addr}: "
                f"mid-ring media corruption, not a torn append)",
                offset=addr,
                record_index=self._index_of(logical),
            )
        return payload, logical + _pad(_REC_HDR.size + length)

    def _index_of(self, logical: int) -> int:
        """Logical record index (from the consume pointer) of ``logical``,
        walking headers without CRC validation — error-path only."""
        at = self._consume
        index = 0
        while at < logical:
            length = _REC_HDR.unpack(
                self.region.read(self._addr(at), _REC_HDR.size)
            )[0]
            if length == _SKIP:
                at += self._data_size - at % self._data_size
                continue
            if length > self._data_size:
                break
            at += _pad(_REC_HDR.size + length)
            index += 1
        return index

    def _truncate_tail(self, logical: int) -> None:
        """Durably move the produce index back to ``logical``, dropping
        the torn record(s) past it."""
        self._produce = logical
        self.region.write(8, struct.pack("<Q", self._produce))
        self.region.flush(8, 8)
        self.region.pool.device.fence()

    def scrub(self, repair: Optional[Callable[[int, int], Optional[bytes]]] = None) -> int:
        """Verify every pending record's CRC; returns records repaired.

        A failing tail record is truncated (same rule as
        :meth:`_read_record`).  A failing mid-ring record is rewritten
        from ``repair(region_offset, size) -> bytes|None`` when the
        callback supplies bytes that themselves verify (a backup or
        replication peer holding the same queue); otherwise
        :class:`~repro.errors.RingCorruptionError` propagates.
        """
        repaired = 0
        logical = self._consume
        index = 0
        while logical < self._produce:
            addr = self._addr(logical)
            length, crc = _REC_HDR.unpack(self.region.read(addr, _REC_HDR.size))
            if length == _SKIP:
                logical += self._data_size - logical % self._data_size
                continue
            if length > self._data_size:
                raise RingCorruptionError(
                    f"ring record length corrupt at region offset {addr}",
                    offset=addr,
                    record_index=index,
                )
            nxt = logical + _pad(_REC_HDR.size + length)
            payload = self.region.read(addr + _REC_HDR.size, length)
            if zlib.crc32(payload) != crc:
                if nxt == self._produce:
                    self._truncate_tail(logical)
                    return repaired
                size = _REC_HDR.size + length
                data = repair(addr, size) if repair is not None else None
                if data is not None and len(data) == size:
                    length2, crc2 = _REC_HDR.unpack(data[: _REC_HDR.size])
                    if length2 == length and zlib.crc32(data[_REC_HDR.size :]) == crc2:
                        self.region.write_and_flush(addr, data)
                        repaired += 1
                        logical = nxt
                        index += 1
                        continue
                raise RingCorruptionError(
                    f"ring record failed its checksum "
                    f"(record {index} at region offset {addr}: "
                    f"mid-ring media corruption, not a torn append)",
                    offset=addr,
                    record_index=index,
                )
            logical = nxt
            index += 1
        return repaired

    def consume(self) -> Optional[bytes]:
        """Dequeue the oldest record durably; None if empty."""
        rec = self._read_record(self._consume)
        if rec is None:
            return None
        payload, nxt = rec
        self._consume = nxt
        self.region.write(16, struct.pack("<Q", self._consume))
        self.region.flush(16, 8)
        self.region.pool.device.fence()
        return payload

    def peek_all(self) -> Iterator[bytes]:
        """Iterate pending records without consuming them."""
        logical = self._consume
        while True:
            rec = self._read_record(logical)
            if rec is None:
                return
            payload, logical = rec
            yield payload

    def drain(self) -> List[bytes]:
        out = []
        while True:
            item = self.consume()
            if item is None:
                return out
            out.append(item)
