"""The key-value store the paper benchmarks: a B+Tree of value blobs.

"We have designed and implemented a key-value store that uses a NVML
based persistent B+Tree that we implement" (§7).  Keys are 64-bit
integers (the YCSB driver hashes its string keys); values are
fixed-capacity blobs overwritten in place, so an update's write set is
one leaf + one value blob — small byte ranges in large objects, the
regime where logging overhead is worst for the baseline.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..errors import HeapError
from ..heap import Int64, PNULL, PPtr, PersistentHeap, PersistentStruct
from ..tx.base import AtomicityEngine
from .btree import DEFAULT_FANOUT, BPlusTree


class KVMeta(PersistentStruct):
    """Persistent store header published as the pool root."""

    fields = [("tree_meta", PPtr()), ("value_size", Int64())]


class KVStore:
    """Transactional KV interface over the persistent B+Tree.

    Every public method is one transaction (composable by opening an
    outer transaction first).  Values larger than ``value_size`` are
    rejected; smaller values are zero-padded, matching the fixed-record
    YCSB setup (1 KB records in the paper).
    """

    def __init__(self, heap: PersistentHeap, meta: KVMeta, tree: BPlusTree):
        self.heap = heap
        self.meta = meta
        self.tree = tree
        self.value_size = meta.value_size

    @classmethod
    def create(
        cls,
        heap: PersistentHeap,
        value_size: int = 1024,
        fanout: int = DEFAULT_FANOUT,
        publish_root: bool = True,
    ) -> "KVStore":
        if value_size <= 0:
            raise ValueError("value_size must be positive")
        tree = BPlusTree.create(heap, fanout=fanout)
        with heap.transaction():
            meta = heap.alloc(KVMeta)
            meta.tree_meta = tree.meta.oid
            meta.value_size = value_size
            if publish_root:
                heap.set_root(meta)
        return cls(heap, meta, tree)

    @classmethod
    def open(cls, heap: PersistentHeap, meta_oid: Optional[int] = None) -> "KVStore":
        """Reopen from the pool root (or an explicit meta pointer)."""
        meta = (
            heap.root(KVMeta) if meta_oid is None else heap.deref(meta_oid, KVMeta)
        )
        if meta is None:
            raise HeapError("pool has no KV store root")
        tree = BPlusTree.open(heap, meta.tree_meta)
        return cls(heap, meta, tree)

    # -- operations ------------------------------------------------------------

    def _check_value(self, value: bytes) -> bytes:
        if len(value) > self.value_size:
            raise ValueError(
                f"value of {len(value)} bytes exceeds record size {self.value_size}"
            )
        return value

    def put(self, key: int, value: bytes) -> bool:
        """Insert or update; returns True if the key already existed.

        Updates overwrite the value blob *in place* — no reallocation —
        so the transaction's write set is {leaf?, blob} for updates and
        {allocator words, leaf(s), blob} for inserts.
        """
        value = self._check_value(value)
        with self.heap.transaction():
            vptr = self.tree.get(key)
            if vptr is not None:
                self.heap.write_blob_at(vptr, 0, value)
                return True
            new_ptr = self.heap.alloc_blob(self.value_size)
            self.heap.write_blob_at(new_ptr, 0, value)
            self.tree.put(key, new_ptr)
            return False

    def get(self, key: int) -> Optional[bytes]:
        """The stored record (zero-padded to ``value_size``), or None."""
        with self.heap.transaction():
            vptr = self.tree.get(key)
            if vptr is None:
                return None
            return self.heap.read_blob(vptr)

    def delete(self, key: int) -> bool:
        """Remove the key and free its value blob."""
        with self.heap.transaction():
            vptr = self.tree.delete(key)
            if vptr is None:
                return False
            self.heap.free(vptr)
            return True

    def scan(self, start_key: int, limit: int) -> List[Tuple[int, bytes]]:
        """Range scan: up to ``limit`` records with key >= start_key."""
        with self.heap.transaction():
            return [
                (k, self.heap.read_blob(p)) for k, p in self.tree.scan(start_key, limit)
            ]

    def read_modify_write(self, key: int, fn: Callable[[bytes], bytes]) -> bool:
        """Atomic RMW (YCSB-F's operation); returns False if absent."""
        with self.heap.transaction():
            vptr = self.tree.get(key)
            if vptr is None:
                return False
            new = self._check_value(fn(self.heap.read_blob(vptr)))
            self.heap.write_blob_at(vptr, 0, new)
            return True

    def __len__(self) -> int:
        return len(self.tree)

    def __contains__(self, key: int) -> bool:
        return self.tree.get(key) is not None

    # -- maintenance --------------------------------------------------------------

    def drain(self) -> None:
        """Wait out any deferred backup syncs (delegates to the heap)."""
        self.heap.drain()

    @property
    def engine(self) -> AtomicityEngine:
        return self.heap.engine
