"""Persistent B+Tree — the index under the paper's key-value store (§7).

Nodes are persistent structs with fixed-fanout key/pointer arrays; leaves
are chained for range scans.  Every mutation runs inside a transaction on
the owning heap, declaring write intents per touched node — with the undo
baseline each touched node's whole block is copied in the critical path,
with Kamino only a 32-byte intent is logged, which is precisely the
asymmetry Figures 12–13 measure.

Deletes are lazy at the structural level: keys are removed from leaves
but empty leaves stay linked (and internal separators stay in place), a
common simplification that keeps every operation's write set small and
bounded.  Space is reclaimed for the *values*; index nodes are recycled
only on drop.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Iterator, List, Optional, Tuple, Type

from ..errors import SchemaError
from ..heap import Array, Int64, PNULL, PPtr, PersistentHeap, PersistentStruct

DEFAULT_FANOUT = 32

_node_classes: Dict[int, Type[PersistentStruct]] = {}


def node_class(fanout: int) -> Type[PersistentStruct]:
    """The persistent node struct for a given fanout (cached per fanout)."""
    cls = _node_classes.get(fanout)
    if cls is None:
        if not 4 <= fanout <= 128:
            raise SchemaError(f"fanout must be in [4, 128], got {fanout}")
        cls = type(
            f"BTreeNode{fanout}",
            (PersistentStruct,),
            {
                "fields": [
                    ("is_leaf", Int64()),
                    ("count", Int64()),
                    ("next", PPtr()),
                    ("keys", Array(Int64(), fanout)),
                    ("ptrs", Array(PPtr(), fanout + 1)),
                ]
            },
        )
        _node_classes[fanout] = cls
    return cls


class BTreeMeta(PersistentStruct):
    """Persistent tree header: root pointer, entry count, fanout."""

    fields = [("root", PPtr()), ("count", Int64()), ("fanout", Int64())]


class BPlusTree:
    """A persistent B+Tree mapping int64 keys to persistent pointers.

    Values are opaque oids (usually value blobs); the tree itself never
    touches them, so the KV layer decides value lifetime.
    """

    def __init__(self, heap: PersistentHeap, meta: BTreeMeta):
        self.heap = heap
        self.meta = meta
        self.fanout = meta.fanout
        self._node_cls = node_class(self.fanout)

    @classmethod
    def create(cls, heap: PersistentHeap, fanout: int = DEFAULT_FANOUT) -> "BPlusTree":
        node_class(fanout)  # validate before allocating
        with heap.transaction():
            meta = heap.alloc(BTreeMeta)
            meta.fanout = fanout
        return cls(heap, meta)

    @classmethod
    def open(cls, heap: PersistentHeap, meta_oid: int) -> "BPlusTree":
        return cls(heap, heap.deref(meta_oid, BTreeMeta))

    # -- node helpers -------------------------------------------------------

    def _node(self, oid: int):
        return self._node_cls(self.heap, oid)

    def _new_node(self, is_leaf: bool):
        node = self.heap.alloc(self._node_cls)
        node.is_leaf = 1 if is_leaf else 0
        return node

    def _store(self, node, keys: List[int], ptrs: List[int]) -> None:
        """Write back a node's logical contents, padding to the arrays."""
        f = self.fanout
        node.keys = keys + [0] * (f - len(keys))
        node.ptrs = ptrs + [PNULL] * (f + 1 - len(ptrs))
        node.count = len(keys)

    def _load(self, node) -> Tuple[List[int], List[int]]:
        count = node.count
        keys = node.keys[:count]
        nptrs = count + (0 if node.is_leaf else 1)
        ptrs = node.ptrs[:nptrs]
        return keys, ptrs

    # -- reads -------------------------------------------------------------------

    def get(self, key: int) -> Optional[int]:
        """Value pointer for ``key``, or None (read-only transaction)."""
        with self.heap.transaction():
            leaf = self._descend(key)
            if leaf is None:
                return None
            keys, ptrs = self._load(leaf)
            idx = bisect_left(keys, key)
            if idx < len(keys) and keys[idx] == key:
                return ptrs[idx]
            return None

    def _descend(self, key: int):
        oid = self.meta.root
        if oid == PNULL:
            return None
        node = self._node(oid)
        while not node.is_leaf:
            keys, ptrs = self._load(node)
            node = self._node(ptrs[bisect_right(keys, key)])
        return node

    def scan(self, start_key: int, limit: int) -> List[Tuple[int, int]]:
        """Up to ``limit`` (key, ptr) pairs with key >= start_key."""
        out: List[Tuple[int, int]] = []
        with self.heap.transaction():
            leaf = self._descend(start_key)
            while leaf is not None and len(out) < limit:
                keys, ptrs = self._load(leaf)
                idx = bisect_left(keys, start_key)
                for i in range(idx, len(keys)):
                    out.append((keys[i], ptrs[i]))
                    if len(out) >= limit:
                        break
                leaf = self.heap.deref(leaf.next, self._node_cls)
        return out

    # -- writes -------------------------------------------------------------------

    def put(self, key: int, vptr: int) -> Optional[int]:
        """Insert or replace; returns the previous pointer if replaced."""
        with self.heap.transaction():
            root_oid = self.meta.root
            if root_oid == PNULL:
                leaf = self._new_node(is_leaf=True)
                self._store(leaf, [key], [vptr])
                self.meta.tx_add()
                self.meta.root = leaf.oid
                self.meta.count = 1
                return None
            split, old = self._insert(self._node(root_oid), key, vptr)
            if split is not None:
                sep, right_oid = split
                new_root = self._new_node(is_leaf=False)
                self._store(new_root, [sep], [root_oid, right_oid])
                self.meta.tx_add()
                self.meta.root = new_root.oid
            if old is None:
                self.meta.tx_add()
                self.meta.count = self.meta.count + 1
            return old

    def _insert(self, node, key: int, vptr: int):
        """Recursive insert; returns ((sep, new_node_oid) | None, old_ptr)."""
        keys, ptrs = self._load(node)
        if node.is_leaf:
            idx = bisect_left(keys, key)
            if idx < len(keys) and keys[idx] == key:
                old = ptrs[idx]
                ptrs[idx] = vptr
                node.tx_add()
                self._store(node, keys, ptrs)
                return None, old
            keys.insert(idx, key)
            ptrs.insert(idx, vptr)
            if len(keys) <= self.fanout:
                node.tx_add()
                self._store(node, keys, ptrs)
                return None, None
            return self._split_leaf(node, keys, ptrs), None
        child_idx = bisect_right(keys, key)
        split, old = self._insert(self._node(ptrs[child_idx]), key, vptr)
        if split is None:
            return None, old
        sep, right_oid = split
        keys.insert(child_idx, sep)
        ptrs.insert(child_idx + 1, right_oid)
        if len(keys) <= self.fanout:
            node.tx_add()
            self._store(node, keys, ptrs)
            return None, old
        return self._split_internal(node, keys, ptrs), old

    def _split_leaf(self, node, keys: List[int], ptrs: List[int]):
        mid = len(keys) // 2
        right = self._new_node(is_leaf=True)
        self._store(right, keys[mid:], ptrs[mid:])
        right.next = node.next
        node.tx_add()
        self._store(node, keys[:mid], ptrs[:mid])
        node.next = right.oid
        return keys[mid], right.oid

    def _split_internal(self, node, keys: List[int], ptrs: List[int]):
        mid = len(keys) // 2
        sep = keys[mid]
        right = self._new_node(is_leaf=False)
        self._store(right, keys[mid + 1 :], ptrs[mid + 1 :])
        node.tx_add()
        self._store(node, keys[:mid], ptrs[: mid + 1])
        return sep, right.oid

    def delete(self, key: int) -> Optional[int]:
        """Remove ``key``; returns its pointer, or None if absent."""
        with self.heap.transaction():
            leaf = self._descend(key)
            if leaf is None:
                return None
            keys, ptrs = self._load(leaf)
            idx = bisect_left(keys, key)
            if idx >= len(keys) or keys[idx] != key:
                return None
            old = ptrs[idx]
            del keys[idx]
            del ptrs[idx]
            leaf.tx_add()
            self._store(leaf, keys, ptrs)
            self.meta.tx_add()
            self.meta.count = self.meta.count - 1
            return old

    # -- introspection ---------------------------------------------------------------

    def __len__(self) -> int:
        return self.meta.count

    def items(self) -> Iterator[Tuple[int, int]]:
        """All (key, ptr) pairs in key order (leaf-chain walk)."""
        oid = self.meta.root
        if oid == PNULL:
            return
        node = self._node(oid)
        while not node.is_leaf:
            _keys, ptrs = self._load(node)
            node = self._node(ptrs[0])
        while node is not None:
            keys, ptrs = self._load(node)
            for k, p in zip(keys, ptrs):
                yield k, p
            node = self.heap.deref(node.next, self._node_cls)

    def height(self) -> int:
        h = 0
        oid = self.meta.root
        if oid == PNULL:
            return 0
        node = self._node(oid)
        h = 1
        while not node.is_leaf:
            _keys, ptrs = self._load(node)
            node = self._node(ptrs[0])
            h += 1
        return h

    def check_invariants(self) -> None:
        """Assert sortedness, separator bounds, counts, and chain order."""
        root_oid = self.meta.root
        if root_oid == PNULL:
            assert self.meta.count == 0
            return
        leaves: List[int] = []
        total = self._check_node(self._node(root_oid), None, None, leaves)
        assert total == self.meta.count, (
            f"count mismatch: counted {total}, meta says {self.meta.count}"
        )
        # the leaf chain must visit exactly the leaves, left to right
        chain = []
        node = self._node(root_oid)
        while not node.is_leaf:
            _k, ptrs = self._load(node)
            node = self._node(ptrs[0])
        while node is not None:
            chain.append(node.oid)
            node = self.heap.deref(node.next, self._node_cls)
        assert chain == leaves, "leaf chain disagrees with tree structure"

    def _check_node(self, node, lo, hi, leaves: List[int]) -> int:
        keys, ptrs = self._load(node)
        assert keys == sorted(keys), "unsorted node"
        for k in keys:
            assert lo is None or k >= lo, "key below separator bound"
            assert hi is None or k < hi, "key above separator bound"
        if node.is_leaf:
            leaves.append(node.oid)
            return len(keys)
        assert len(ptrs) == len(keys) + 1
        total = 0
        bounds = [lo] + keys + [hi]
        for i, p in enumerate(ptrs):
            total += self._check_node(self._node(p), bounds[i], bounds[i + 1], leaves)
        return total
