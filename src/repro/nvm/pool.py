"""Persistent memory pools: named, reopenable regions on an NVM device.

A :class:`PmemPool` plays the role of an NVML/PMDK *pool*: a header with a
magic number and a root-object pointer, plus a small persistent region
table that subsystems (heap, intent log, backup, …) carve their space
from.  Reopening a pool after a crash validates the header and hands each
subsystem back the same region, which is where recovery starts.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import OutOfBoundsError, PoolCorruptionError
from .device import NVMDevice
from .latency import CACHE_LINE

MAGIC = 0x4B414D494E4F5458  # "KAMINOTX"
VERSION = 1

_HEADER_FMT = "<QQQQQ"  # magic, version, pool size, root offset, region count
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)

_REGION_NAME_LEN = 24
_REGION_FMT = f"<{_REGION_NAME_LEN}sQQ"  # name, offset, size
_REGION_SIZE = struct.calcsize(_REGION_FMT)
MAX_REGIONS = 16

_TABLE_OFF = CACHE_LINE  # region table starts at the second cache line
DATA_START = _TABLE_OFF + MAX_REGIONS * _REGION_SIZE
# round the first allocatable byte up to a cache line
DATA_START = (DATA_START + CACHE_LINE - 1) // CACHE_LINE * CACHE_LINE

#: region holding the quarantine table and spare lines; created lazily on
#: the first :meth:`PmemPool.quarantine_line` call so pools that never see
#: a dead line pay nothing for it.
QUARANTINE_REGION = "quarantine"
SPARE_LINES = 32

_Q_ENTRY_FMT = "<QQ"  # dead absolute line, spare absolute line
_Q_ENTRY_SIZE = struct.calcsize(_Q_ENTRY_FMT)
_Q_TABLE_OFF = CACHE_LINE  # header line, then the table, then the spares


def _q_table_bytes(spares: int) -> int:
    raw = spares * _Q_ENTRY_SIZE
    return (raw + CACHE_LINE - 1) // CACHE_LINE * CACHE_LINE


def _q_region_size(spares: int) -> int:
    return _Q_TABLE_OFF + _q_table_bytes(spares) + spares * CACHE_LINE


@dataclass(frozen=True)
class PmemRegion:
    """A named, contiguous slice of a pool with relative addressing."""

    pool: "PmemPool"
    name: str
    offset: int
    size: int

    def __post_init__(self):
        # hot-path bindings: the pool's device binding is fixed for the
        # region's lifetime (reopen builds fresh pool + region objects),
        # so the two-hop ``self.pool.device.<op>`` walk is resolved once
        object.__setattr__(self, "_dev_read", self.pool.device.read)
        object.__setattr__(self, "_dev_write", self.pool.device.write)
        object.__setattr__(self, "_dev_flush", self.pool.device.flush)

    def _abs(self, addr: int, size: int) -> int:
        if addr < 0 or size < 0 or addr + size > self.size:
            raise OutOfBoundsError(
                f"region '{self.name}': access [{addr}, {addr + size}) "
                f"outside {self.size} bytes"
            )
        return self.offset + addr

    def read(self, addr: int, size: int) -> bytes:
        # hot path: bounds check inlined, _abs only raises
        if 0 <= addr and 0 <= size and addr + size <= self.size:
            return self._dev_read(self.offset + addr, size)
        self._abs(addr, size)
        raise AssertionError("unreachable")

    def write(self, addr: int, data: bytes) -> None:
        size = len(data)
        if 0 <= addr and addr + size <= self.size:
            self._dev_write(self.offset + addr, data)
            return
        self._abs(addr, size)
        raise AssertionError("unreachable")

    def flush(self, addr: int, size: int) -> None:
        self._dev_flush(self._abs(addr, size), size)

    def flush_multi(self, ranges) -> None:
        """Flush several ``(addr, size)`` ranges in one device call.

        Stat-identical to per-range :meth:`flush` calls in order; only
        the per-call lock/dispatch overhead is amortised.
        """
        self.pool.device.flush_multi(
            [(self._abs(addr, size), size) for addr, size in ranges]
        )

    def copy(self, dst: int, src: int, size: int) -> None:
        self.pool.device.copy(self._abs(dst, size), self._abs(src, size), size)

    def write_and_flush(self, addr: int, data: bytes) -> None:
        """Store then immediately flush+fence — a durable store."""
        abs_addr = self._abs(addr, len(data))
        self.pool.device.write(abs_addr, data)
        self.pool.device.flush(abs_addr, len(data))
        self.pool.device.fence()

    def durable_read(self, addr: int, size: int) -> bytes:
        return self.pool.device.durable_read(self._abs(addr, size), size)


class PmemPool:
    """A pool of persistent memory with a root pointer and region table.

    Use :meth:`create` on a fresh device and :meth:`open` after a restart.
    """

    def __init__(self, device: NVMDevice):
        self.device = device
        self._regions: Dict[str, PmemRegion] = {}
        self._next_free = DATA_START

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(cls, device: NVMDevice) -> "PmemPool":
        """Format ``device`` as an empty pool."""
        pool = cls(device)
        header = struct.pack(_HEADER_FMT, MAGIC, VERSION, device.size, 0, 0)
        device.write(0, header)
        device.flush(0, _HEADER_SIZE)
        device.fence()
        return pool

    @classmethod
    def open(cls, device: NVMDevice) -> "PmemPool":
        """Open an existing pool, validating its header and region table."""
        raw = device.read(0, _HEADER_SIZE)
        magic, version, size, _root, count = struct.unpack(_HEADER_FMT, raw)
        if magic != MAGIC:
            raise PoolCorruptionError(f"bad magic {magic:#x}")
        if version != VERSION:
            raise PoolCorruptionError(f"unsupported pool version {version}")
        if size != device.size:
            raise PoolCorruptionError(
                f"pool formatted for {size} bytes but device is {device.size}"
            )
        if count > MAX_REGIONS:
            raise PoolCorruptionError(f"region count {count} exceeds {MAX_REGIONS}")
        pool = cls(device)
        for i in range(count):
            entry = device.read(_TABLE_OFF + i * _REGION_SIZE, _REGION_SIZE)
            name_b, offset, rsize = struct.unpack(_REGION_FMT, entry)
            name = name_b.rstrip(b"\0").decode("ascii")
            pool._regions[name] = PmemRegion(pool, name, offset, rsize)
            pool._next_free = max(pool._next_free, offset + rsize)
        return pool

    # -- header fields ---------------------------------------------------------

    @property
    def root_offset(self) -> int:
        """Offset of the application root object (0 = unset)."""
        raw = self.device.read(24, 8)
        return struct.unpack("<Q", raw)[0]

    def set_root_offset(self, offset: int) -> None:
        self.device.write(24, struct.pack("<Q", offset))
        self.device.flush(24, 8)
        self.device.fence()

    # -- regions -----------------------------------------------------------------

    def create_region(self, name: str, size: int) -> PmemRegion:
        """Reserve ``size`` bytes under ``name`` (persisted; reopenable)."""
        if name in self._regions:
            raise ValueError(f"region '{name}' already exists")
        if len(self._regions) >= MAX_REGIONS:
            raise ValueError("region table full")
        if len(name.encode("ascii")) > _REGION_NAME_LEN:
            raise ValueError(f"region name '{name}' too long")
        size = (size + CACHE_LINE - 1) // CACHE_LINE * CACHE_LINE
        offset = self._next_free
        if offset + size > self.device.size:
            raise OutOfBoundsError(
                f"pool exhausted: need {size} bytes at {offset}, "
                f"device has {self.device.size}"
            )
        region = PmemRegion(self, name, offset, size)
        index = len(self._regions)
        entry = struct.pack(_REGION_FMT, name.encode("ascii"), offset, size)
        self.device.write(_TABLE_OFF + index * _REGION_SIZE, entry)
        self.device.flush(_TABLE_OFF + index * _REGION_SIZE, _REGION_SIZE)
        # Persist the new region count after the entry itself (ordering).
        self.device.fence()
        self._regions[name] = region
        self._next_free = offset + size
        self.device.write(32, struct.pack("<Q", len(self._regions)))
        self.device.flush(32, 8)
        self.device.fence()
        return region

    def region(self, name: str) -> PmemRegion:
        """Look up an existing region by name."""
        try:
            return self._regions[name]
        except KeyError:
            raise KeyError(f"no region named '{name}'") from None

    def has_region(self, name: str) -> bool:
        return name in self._regions

    def region_or_create(self, name: str, size: int) -> PmemRegion:
        """Fetch ``name`` if present (reopen path) else reserve it."""
        if name in self._regions:
            return self._regions[name]
        return self.create_region(name, size)

    @property
    def regions(self) -> Dict[str, PmemRegion]:
        return dict(self._regions)

    @property
    def free_bytes(self) -> int:
        return self.device.size - self._next_free

    # -- quarantine: dead-line remapping ------------------------------------

    def quarantine_line(self, line: int, spares: int = SPARE_LINES) -> Optional[int]:
        """Persistently retire absolute ``line`` and assign it a spare.

        Returns the spare's absolute line index, the previously assigned
        spare if ``line`` is already quarantined, or ``None`` when the
        table is full or the pool has no room left for it.  The entry is
        durable before the count that publishes it (same ordering as the
        region table), so a crash mid-quarantine loses at most the
        not-yet-published entry.
        """
        try:
            region = self.region_or_create(QUARANTINE_REGION, _q_region_size(spares))
        except (ValueError, OutOfBoundsError):
            return None
        count = struct.unpack("<Q", region.read(0, 8))[0]
        capacity = (region.size - _Q_TABLE_OFF) // (_Q_ENTRY_SIZE + CACHE_LINE)
        spares_off = _Q_TABLE_OFF + _q_table_bytes(capacity)
        for i in range(count):
            dead, spare = struct.unpack(
                _Q_ENTRY_FMT, region.read(_Q_TABLE_OFF + i * _Q_ENTRY_SIZE, _Q_ENTRY_SIZE)
            )
            if dead == line:
                return spare
        if count >= capacity:
            return None
        spare_line = (region.offset + spares_off) // CACHE_LINE + count
        region.write_and_flush(
            _Q_TABLE_OFF + count * _Q_ENTRY_SIZE,
            struct.pack(_Q_ENTRY_FMT, line, spare_line),
        )
        region.write_and_flush(0, struct.pack("<Q", count + 1))
        return spare_line

    def quarantine_table(self) -> List[Tuple[int, int]]:
        """All persisted ``(dead_line, spare_line)`` remappings."""
        if QUARANTINE_REGION not in self._regions:
            return []
        region = self._regions[QUARANTINE_REGION]
        count = struct.unpack("<Q", region.read(0, 8))[0]
        out: List[Tuple[int, int]] = []
        for i in range(count):
            dead, spare = struct.unpack(
                _Q_ENTRY_FMT, region.read(_Q_TABLE_OFF + i * _Q_ENTRY_SIZE, _Q_ENTRY_SIZE)
            )
            out.append((dead, spare))
        return out

    def load_quarantine(self, media) -> int:
        """Replay the persisted quarantine table into a media model after
        reopen, so retired lines stay retired across restarts.  Returns
        the number of entries applied."""
        entries = self.quarantine_table()
        for dead, _spare in entries:
            media.retire(dead)
        return len(entries)
