"""Primitive-operation counters for the simulated NVM device.

The device increments these counters on every access; the benchmark
harness snapshots them around a transaction and converts the delta into
simulated nanoseconds with a :class:`~repro.nvm.latency.LatencyModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .latency import CACHE_LINE, LatencyModel


@dataclass(slots=True)
class NVMStats:
    """Counters of device primitives since construction (or last reset)."""

    loads: int = 0
    load_bytes: int = 0
    stores: int = 0
    store_bytes: int = 0
    flushes: int = 0
    flushed_lines: int = 0
    flush_bursts: int = 0
    fences: int = 0
    copies: int = 0
    copy_bytes: int = 0
    # media-fault accounting (repro.integrity): injected bit flips, lines
    # declared dead, corruptions detected by checksum verification, and
    # lines repaired from a surviving copy.  Bookkeeping only — these do
    # not contribute to simulated_ns (a latent fault costs no time until
    # a scrub or repair issues real device operations, which are charged
    # through the ordinary counters).
    media_flips: int = 0
    media_dead: int = 0
    media_detected: int = 0
    media_repaired: int = 0
    # adversarial stale-CRC replays injected (line + matching stale
    # checksum rewritten together — consistent corruption the per-line
    # sidecar cannot see; detection is the integrity tree's job)
    media_stale: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        self.loads = 0
        self.load_bytes = 0
        self.stores = 0
        self.store_bytes = 0
        self.flushes = 0
        self.flushed_lines = 0
        self.flush_bursts = 0
        self.fences = 0
        self.copies = 0
        self.copy_bytes = 0
        self.media_flips = 0
        self.media_dead = 0
        self.media_detected = 0
        self.media_repaired = 0
        self.media_stale = 0

    def snapshot(self) -> "NVMStats":
        """Return an independent copy of the current counters.

        Positional construction: this runs three times per simulated
        transaction, so it is one of the harness's hottest call sites.
        """
        return NVMStats(
            self.loads,
            self.load_bytes,
            self.stores,
            self.store_bytes,
            self.flushes,
            self.flushed_lines,
            self.flush_bursts,
            self.fences,
            self.copies,
            self.copy_bytes,
            self.media_flips,
            self.media_dead,
            self.media_detected,
            self.media_repaired,
            self.media_stale,
        )

    def delta(self, since: "NVMStats") -> "NVMStats":
        """Return counters accumulated since the ``since`` snapshot."""
        return NVMStats(
            self.loads - since.loads,
            self.load_bytes - since.load_bytes,
            self.stores - since.stores,
            self.store_bytes - since.store_bytes,
            self.flushes - since.flushes,
            self.flushed_lines - since.flushed_lines,
            self.flush_bursts - since.flush_bursts,
            self.fences - since.fences,
            self.copies - since.copies,
            self.copy_bytes - since.copy_bytes,
            self.media_flips - since.media_flips,
            self.media_dead - since.media_dead,
            self.media_detected - since.media_detected,
            self.media_repaired - since.media_repaired,
            self.media_stale - since.media_stale,
        )

    def simulated_ns(self, model: LatencyModel) -> float:
        """Convert these counters into simulated nanoseconds.

        Loads and stores are charged per touched cache line; flushes per
        flushed line; copies per byte.  This is a serial-time estimate; the
        event simulator layers queueing for shared bandwidth on top.
        """
        load_lines = (self.load_bytes + CACHE_LINE - 1) // CACHE_LINE if self.load_bytes else 0
        store_lines = (self.store_bytes + CACHE_LINE - 1) // CACHE_LINE if self.store_bytes else 0
        # Without a coalescing device every flushed line is its own burst
        # (the device keeps bursts == lines), so this reduces to the
        # original lines * flush_line_ns.  Counters built by hand with no
        # burst information fall back to the same uncoalesced pricing.
        bursts = self.flush_bursts if self.flush_bursts else self.flushed_lines
        burst_extra_lines = self.flushed_lines - bursts
        return (
            load_lines * model.read_line_ns
            + store_lines * model.write_line_ns
            + bursts * model.flush_line_ns
            + burst_extra_lines * model.effective_burst_line_ns()
            + self.fences * model.fence_ns
            + self.copy_bytes * model.byte_copy_ns
        )

    @property
    def total_bytes(self) -> int:
        """All bytes moved to or from the media (loads+stores+copies)."""
        return self.load_bytes + self.store_bytes + self.copy_bytes


@dataclass
class StatsStack:
    """A small helper for nested snapshot/delta accounting."""

    stats: NVMStats
    _marks: list = field(default_factory=list)

    def push(self) -> None:
        self._marks.append(self.stats.snapshot())

    def pop(self) -> NVMStats:
        return self.stats.delta(self._marks.pop())
