"""Simulated byte-addressable non-volatile memory device.

The device models the hardware contract Kamino-Tx is built on:

* CPU stores land in a **volatile cache-line overlay**, not on the media.
* A line becomes durable only when explicitly flushed (``clwb`` +
  ``sfence``), modelled by :meth:`NVMDevice.flush` / :meth:`NVMDevice.fence`.
* On a **crash**, unflushed lines are lost — except that the cache may have
  evicted any of them at any earlier moment, so each dirty 8-byte word
  independently may or may not have reached the media.  This reproduces the
  torn-write / reordering failure window that the paper's recovery protocol
  must tolerate.

Python cannot control real persistence ordering (the reason this paper is
hard to reproduce natively), so all durability semantics in this repository
flow through this class; see DESIGN.md §1 for the substitution argument.

Hot-path implementation notes (the *invariance contract*, see
``docs/INTERNALS.md``): every figure benchmark funnels millions of
operations through this class, so the data path is written for CPython
speed — span-mask lookup tables instead of per-word loops, a single-line
fast path (the dominant case for 64-byte objects), a bulk dirty-range
representation for large line-aligned copies (the full-mirror seed), an
optional lock-elided mode for single-threaded execution contexts, and a
dedicated internal copy path that never touches the load/store counters.
None of this may be visible in simulated results: durable bytes,
:class:`~repro.nvm.stats.NVMStats`, and crash-surviving state must be
bit-identical to the naive :class:`~repro.nvm.reference.ReferenceNVMDevice`,
which the differential property tests enforce.
"""

from __future__ import annotations

import hashlib
import random
import struct
import threading
from bisect import bisect_right, insort
from enum import Enum
from operator import itemgetter
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import DeviceCrashedError, OutOfBoundsError
from .latency import CACHE_LINE, WORD, NVDIMM, LatencyModel
from .stats import NVMStats

_WORDS_PER_LINE = CACHE_LINE // WORD
_FULL_MASK = (1 << _WORDS_PER_LINE) - 1

_LINE_SHIFT = CACHE_LINE.bit_length() - 1  # 6
_LINE_MASK = CACHE_LINE - 1  # 63
_WORD_SHIFT = WORD.bit_length() - 1  # 3
assert 1 << _LINE_SHIFT == CACHE_LINE and 1 << _WORD_SHIFT == WORD

#: _SPAN_MASKS[first_word][last_word] — dirty-word bitmask covering the
#: inclusive word span, precomputed so the store path never loops per word.
_SPAN_MASKS = [
    [
        sum(1 << w for w in range(fw, lw + 1)) if lw >= fw else 0
        for lw in range(_WORDS_PER_LINE)
    ]
    for fw in range(_WORDS_PER_LINE)
]

#: Copies at least this large (and line-aligned at the destination) are
#: represented as one bulk dirty range instead of per-line dict entries.
_BULK_THRESHOLD = 64 * CACHE_LINE

#: bisect key for the sorted-by-start-line bulk record list
_REC_START = itemgetter(0)


class _NullLock:
    """Context-manager stand-in when the caller opts out of locking."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class CrashPolicy(Enum):
    """What happens to unflushed dirty words at crash time.

    ``DROP_ALL`` — no unflushed data survives (cache never evicted).
    ``KEEP_ALL`` — everything survives (cache evicted everything just
    before power loss); equivalent to eADR platforms.
    ``RANDOM`` — each dirty 8-byte word survives independently with a
    configurable probability; the adversarial case recovery must handle.
    """

    DROP_ALL = "drop_all"
    KEEP_ALL = "keep_all"
    RANDOM = "random"


class NVMDevice:
    """A fixed-size region of simulated NVM with cache semantics.

    Args:
        size: device capacity in bytes.
        model: latency model used by cost accounting (stored for
            convenience; the device itself only counts primitives).
        seed: seed for the crash-survival RNG, making torn-write
            experiments reproducible.
        coalesce_flushes: enable the write-combining flush coalescer.
            Runs of *adjacent* dirty lines inside one flush (or
            ``persist_all``) drain as a single charged burst: the burst
            pays one full ``flush_line_ns`` round trip and each extra
            line streams at the model's ``burst_line_ns``.  Durability is
            byte-identical either way — exactly the same lines persist at
            exactly the same program points; only the cost accounting
            (``NVMStats.flush_bursts``) changes, which the crash-state
            equivalence property test asserts.
        lock_mode: ``"locked"`` (default) serialises every access behind
            an ``RLock`` so worker threads and the background syncer can
            share the device.  ``"uncontended"`` binds the public data
            path directly to the lock-free implementations — an opt-in
            for single-threaded :class:`~repro.runtime.context.
            ExecutionContext` runs (the virtual-client scheduler is one
            OS thread), where the per-call lock round trip is pure
            interpreter overhead.  Semantics and stats are identical.
    """

    def __init__(
        self,
        size: int,
        model: LatencyModel = NVDIMM,
        seed: Optional[int] = None,
        coalesce_flushes: bool = False,
        lock_mode: str = "locked",
    ):
        if size <= 0:
            raise ValueError("device size must be positive")
        if lock_mode not in ("locked", "uncontended"):
            raise ValueError(f"unknown lock_mode {lock_mode!r}")
        self.size = size
        self.model = model
        self.coalesce_flushes = coalesce_flushes
        self.lock_mode = lock_mode
        self.stats = NVMStats()
        self._alloc_store(size)
        # line index -> (line buffer, dirty-word bitmask)
        self._dirty: Dict[int, Tuple[bytearray, int]] = {}
        # large line-aligned dirty ranges (e.g. the mirror seed copy),
        # kept sorted by start line and disjoint from each other and
        # from ``_dirty``; every line inside one is fully dirty
        self._bulk: List[List] = []  # [start_line, bytearray]
        self._crashed = False
        self._rng = random.Random(seed)
        # opt-in crash-state fingerprinting (see overlay_fingerprint):
        # when set, crash() records a digest of the pre-resolution state
        # so the crash-consistency checker can prune redundant points
        self.fingerprint_crashes = False
        self.last_crash_fingerprint: Optional[str] = None
        # optional media-fault model (repro.integrity): None costs one
        # is-None test on the read path and nothing anywhere else
        self._media = None
        # one mutex serialises all device access: worker threads and the
        # background syncer share the overlay dictionaries (cheap under
        # the GIL; the benchmarks run single-threaded traces anyway)
        self._mutex = threading.RLock() if lock_mode == "locked" else _NullLock()
        # scheduled fail-point: crash after N more mutating operations
        self._crash_countdown: Optional[int] = None
        self._crash_policy = CrashPolicy.DROP_ALL
        self._crash_survival = 0.5
        if lock_mode == "uncontended":
            # elide the lock wrappers entirely: bind the public names to
            # the internal implementations on this instance
            self.read = self._read_locked
            self.write = self._write_locked
            self.copy = self._copy_locked
            self.flush = self._flush_unlocked
            self.flush_multi = self._flush_multi_locked
            self.fence = self._fence_locked
            self.persist_all = self._persist_all_locked

    # -- helpers -----------------------------------------------------------

    #: which byte-store implementation backs this device class; the
    #: numpy subclass overrides it (see repro.nvm.backend)
    backend = "pure"

    def _alloc_store(self, size: int) -> None:
        """Allocate the durable byte store; subclasses swap the medium.

        Whatever the representation, ``self._durable`` must remain a
        byte-addressable, slice-assignable buffer of exactly ``size``
        bytes — the media-fault model, the scrubber, and tests poke it
        directly.
        """
        self._durable = bytearray(size)

    def _check(self, addr: int, size: int) -> None:
        if self._crashed:
            raise DeviceCrashedError("device crashed; call restart() first")
        if addr < 0 or size < 0 or addr + size > self.size:
            raise OutOfBoundsError(
                f"access [{addr}, {addr + size}) outside device of {self.size} bytes"
            )

    def _tick_failpoint(self) -> None:
        """Count down a scheduled crash; fires *before* the current op."""
        if self._crash_countdown is None:
            return
        if self._crash_countdown <= 0:
            self._crash_countdown = None
            self.crash(self._crash_policy, self._crash_survival)
            raise DeviceCrashedError("scheduled fail-point reached")
        self._crash_countdown -= 1

    def schedule_crash(
        self,
        after_ops: int,
        policy: CrashPolicy = CrashPolicy.DROP_ALL,
        survival_prob: float = 0.5,
    ) -> None:
        """Arm a fail-point: the device power-fails after ``after_ops``
        more mutating operations (stores, flushes, fences, copies).

        This lets tests crash *inside* an engine's commit or sync code at
        a deterministic, enumerable point — the property-based crash
        suites sweep ``after_ops`` across a whole transaction.
        """
        if after_ops < 0:
            raise ValueError("after_ops must be non-negative")
        self._crash_countdown = after_ops
        self._crash_policy = policy
        self._crash_survival = survival_prob

    def cancel_scheduled_crash(self) -> None:
        self._crash_countdown = None

    # -- media faults (repro.integrity) ------------------------------------

    @property
    def media(self):
        """The attached :class:`~repro.integrity.model.MediaFaultModel`,
        or None when media faults are not modelled."""
        return self._media

    def attach_media(
        self,
        model=None,
        *,
        seed: int = 0,
        protect: bool = True,
        tree: Optional[str] = None,
        bless: bool = False,
    ):
        """Attach a media-fault model to this device's durable bytes.

        With ``protect`` (the default) the model maintains a per-line
        checksum sidecar from the persist paths, enabling detection and
        scrub-and-repair; ``protect=False`` models an unprotected
        deployment where injected corruption is silent.  ``tree``
        (``"streamed"`` or ``"eager"``) additionally maintains a
        persistent integrity tree over the line CRCs, catching consistent
        multi-line / stale-CRC corruption the sidecar alone cannot see;
        ``bless=True`` eagerly records every line's current CRC in the
        sidecar at attach time (closing its lazy-coverage window without
        a tree).  Returns the model for injection calls.
        """
        if model is None:
            from ..integrity.model import MediaFaultModel

            model = MediaFaultModel(
                self, seed=seed, protect=protect, tree=tree, bless=bless
            )
        else:
            model.bind(self)
        self._media = model
        return model

    def scheduled_crash_remaining(self) -> Optional[int]:
        """Mutating operations left before the armed fail-point fires.

        ``None`` when no fail-point is armed (or it already fired).  The
        crash-consistency checker counts a workload's operations by
        arming an unreachably large budget and reading back how much of
        it ticked away — this accessor is the supported way to do that
        (tests must not reach into ``_crash_countdown``).
        """
        return self._crash_countdown

    # -- bulk-range helpers ------------------------------------------------

    def _bulk_find(self, line: int) -> Optional[List]:
        # the list is sorted by start line and records are disjoint, so
        # the only candidate is the rightmost record starting at or
        # before ``line``
        bulk = self._bulk
        i = bisect_right(bulk, line, key=_REC_START) - 1
        if i >= 0:
            rec = bulk[i]
            if line < rec[0] + (len(rec[1]) >> _LINE_SHIFT):
                return rec
        return None

    def _bulk_insert(self, start_line: int, buf: bytearray) -> None:
        insort(self._bulk, [start_line, buf], key=_REC_START)

    def _bulk_overlapping(self, first: int, last: int) -> Tuple[int, int]:
        """Index slice ``[i, j)`` of bulk records overlapping the
        inclusive line range ``[first, last]``."""
        bulk = self._bulk
        i = bisect_right(bulk, first, key=_REC_START) - 1
        if i < 0 or bulk[i][0] + (len(bulk[i][1]) >> _LINE_SHIFT) <= first:
            i += 1
        return i, bisect_right(bulk, last, key=_REC_START)

    def _range_clean(self, addr: int, size: int) -> bool:
        """True if no overlay state overlaps ``[addr, addr+size)``."""
        first = addr >> _LINE_SHIFT
        last = (addr + size - 1) >> _LINE_SHIFT
        dirty = self._dirty
        if dirty:
            if len(dirty) * 4 < last - first + 1:
                for line in dirty:
                    if first <= line <= last:
                        return False
            else:
                for line in range(first, last + 1):
                    if line in dirty:
                        return False
        if self._bulk:
            i, j = self._bulk_overlapping(first, last)
            if i < j:
                return False
        return True

    # -- raw overlay data path (no stats, no checks) -----------------------

    def _peek(self, addr: int, size: int) -> bytes:
        """Overlay-aware read with no accounting (shared by read/copy)."""
        durable = self._durable
        dirty = self._dirty
        bulk = self._bulk
        if not dirty and not bulk:
            return bytes(durable[addr : addr + size])
        first = addr >> _LINE_SHIFT
        last = (addr + size - 1) >> _LINE_SHIFT
        if first == last:
            entry = dirty.get(first)
            if entry is not None:
                off = addr & _LINE_MASK
                return bytes(entry[0][off : off + size])
            if bulk:
                rec = self._bulk_find(first)
                if rec is not None:
                    boff = addr - (rec[0] << _LINE_SHIFT)
                    return bytes(rec[1][boff : boff + size])
            return bytes(durable[addr : addr + size])
        out = bytearray(durable[addr : addr + size])
        if dirty:
            if len(dirty) * 4 < last - first + 1:
                lines = [ln for ln in dirty if first <= ln <= last]
            else:
                lines = [ln for ln in range(first, last + 1) if ln in dirty]
            for line in lines:
                base = line << _LINE_SHIFT
                lo = addr if addr > base else base
                hi = min(addr + size, base + CACHE_LINE)
                out[lo - addr : hi - addr] = dirty[line][0][lo - base : hi - base]
        if bulk:
            i, j = self._bulk_overlapping(first, last)
            for start, buf in bulk[i:j]:
                bstart = start << _LINE_SHIFT
                bend = bstart + len(buf)
                lo = addr if addr > bstart else bstart
                hi = min(addr + size, bend)
                if lo < hi:
                    out[lo - addr : hi - addr] = buf[lo - bstart : hi - bstart]
        return bytes(out)

    def _poke(self, addr: int, data) -> None:
        """Overlay-aware store with no accounting (shared by write/copy)."""
        size = len(data)
        dirty = self._dirty
        line = addr >> _LINE_SHIFT
        off = addr & _LINE_MASK
        if off + size <= CACHE_LINE:
            # single-line fast path: the dominant case for small objects
            entry = dirty.get(line)
            if entry is not None:
                buf = entry[0]
                buf[off : off + size] = data
                dirty[line] = (
                    buf,
                    entry[1] | _SPAN_MASKS[off >> _WORD_SHIFT][(off + size - 1) >> _WORD_SHIFT],
                )
                return
            if self._bulk:
                rec = self._bulk_find(line)
                if rec is not None:
                    boff = addr - (rec[0] << _LINE_SHIFT)
                    rec[1][boff : boff + size] = data
                    return
            base = line << _LINE_SHIFT
            buf = bytearray(self._durable[base : base + CACHE_LINE])
            buf[off : off + size] = data
            dirty[line] = (
                buf,
                _SPAN_MASKS[off >> _WORD_SHIFT][(off + size - 1) >> _WORD_SHIFT],
            )
            return
        bulk = self._bulk
        pos = 0
        while pos < size:
            at = addr + pos
            line = at >> _LINE_SHIFT
            off = at & _LINE_MASK
            take = CACHE_LINE - off
            rem = size - pos
            if rem < take:
                take = rem
            entry = dirty.get(line)
            if entry is not None:
                buf, mask = entry
                buf[off : off + take] = data[pos : pos + take]
                dirty[line] = (
                    buf,
                    mask | _SPAN_MASKS[off >> _WORD_SHIFT][(off + take - 1) >> _WORD_SHIFT],
                )
            else:
                rec = self._bulk_find(line) if bulk else None
                if rec is not None:
                    boff = at - (rec[0] << _LINE_SHIFT)
                    rec[1][boff : boff + take] = data[pos : pos + take]
                elif take == CACHE_LINE:
                    # whole-line store: no need to fault the old line in
                    dirty[line] = (bytearray(data[pos : pos + CACHE_LINE]), _FULL_MASK)
                else:
                    base = line << _LINE_SHIFT
                    buf = bytearray(self._durable[base : base + CACHE_LINE])
                    buf[off : off + take] = data[pos : pos + take]
                    dirty[line] = (
                        buf,
                        _SPAN_MASKS[off >> _WORD_SHIFT][(off + take - 1) >> _WORD_SHIFT],
                    )
            pos += take

    # -- data path ---------------------------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        """Load ``size`` bytes at ``addr``, observing unflushed stores."""
        with self._mutex:
            return self._read_locked(addr, size)

    def _read_locked(self, addr: int, size: int) -> bytes:
        if self._crashed or addr < 0 or size < 0 or addr + size > self.size:
            self._check(addr, size)
        stats = self.stats
        stats.loads += 1
        stats.load_bytes += size
        if self._media is not None:
            self._media.check_read(addr, size)
        return self._peek(addr, size)

    def write(self, addr: int, data: bytes) -> None:
        """Store ``data`` at ``addr`` into the volatile overlay."""
        with self._mutex:
            self._write_locked(addr, data)

    def _write_locked(self, addr: int, data) -> None:
        if self._crash_countdown is not None:
            self._tick_failpoint()
        size = len(data)
        if self._crashed or addr < 0 or addr + size > self.size:
            self._check(addr, size)
        stats = self.stats
        stats.stores += 1
        stats.store_bytes += size
        self._poke(addr, data)

    def copy(self, dst: int, src: int, size: int, chunks: int = 1) -> None:
        """Device-internal memcpy; charged to the copy counters.

        The copy reads through the overlay (sees unflushed stores) and
        writes into the overlay like ordinary stores; callers must still
        flush the destination for durability.  ``chunks`` lets a caller
        that interval-coalesced ``chunks`` adjacent logical copies into
        one bulk move keep the ``copies`` counter bit-identical to the
        uncoalesced sequence (``copy_bytes`` is the byte total either
        way, which is what the cost model prices).
        """
        with self._mutex:
            self._copy_locked(dst, src, size, chunks)

    def _copy_locked(self, dst: int, src: int, size: int, chunks: int = 1) -> None:
        if self._crash_countdown is not None:
            self._tick_failpoint()
        self._check(src, size)
        self._check(dst, size)
        stats = self.stats
        stats.copies += chunks
        stats.copy_bytes += size
        if self._media is not None:
            self._media.check_read(src, size)
        data = self._peek(src, size)
        if (
            size >= _BULK_THRESHOLD
            and dst & _LINE_MASK == 0
            and size & _LINE_MASK == 0
            and self._range_clean(dst, size)
        ):
            # one bulk dirty range instead of size/64 dict entries — the
            # mirror-seed fast path (fully dirty, so no masks needed)
            self._bulk_insert(dst >> _LINE_SHIFT, bytearray(data))
        else:
            self._poke(dst, data)

    # -- persistence -------------------------------------------------------

    def flush(self, addr: int, size: int) -> None:
        """Flush all cache lines covering ``[addr, addr+size)`` to media."""
        if size <= 0:
            return
        with self._mutex:
            self._flush_locked(addr, size)

    def _flush_unlocked(self, addr: int, size: int) -> None:
        if size <= 0:
            return
        self._flush_locked(addr, size)

    def flush_multi(self, ranges: Iterable[Tuple[int, int]]) -> None:
        """Flush several ranges under one lock acquisition.

        Semantically (and in every :class:`NVMStats` counter) identical
        to calling :meth:`flush` once per range in order; it only
        amortises the per-call locking and dispatch overhead, which is
        what the commit path and the backup syncer pay per intent.
        """
        with self._mutex:
            self._flush_multi_locked(ranges)

    def _flush_multi_locked(self, ranges: Iterable[Tuple[int, int]]) -> None:
        for addr, size in ranges:
            if size > 0:
                self._flush_locked(addr, size)

    def _flush_locked(self, addr: int, size: int) -> None:
        if self._crash_countdown is not None:
            self._tick_failpoint()
        self._check(addr, size)
        first = addr >> _LINE_SHIFT
        last = (addr + size - 1) >> _LINE_SHIFT
        dirty = self._dirty
        durable = self._durable
        flushed = 0
        bursts = 0
        bi = bj = 0
        if self._bulk:
            bi, bj = self._bulk_overlapping(first, last)
        media = self._media
        persisted: Optional[List[int]] = None
        if media is not None:
            persisted = [ln for ln in dirty if first <= ln <= last]
            for start, buf in self._bulk[bi:bj]:
                end = start + (len(buf) >> _LINE_SHIFT)
                persisted.extend(range(max(start, first), min(end, last + 1)))
        if bi == bj:
            nrange = last - first + 1
            if len(dirty) * 4 < nrange:
                # sparse overlay, wide flush: walk the dirty lines, not
                # the whole address range
                prev = -2
                for line in sorted(ln for ln in dirty if first <= ln <= last):
                    durable[line << _LINE_SHIFT : (line + 1) << _LINE_SHIFT] = dirty.pop(
                        line
                    )[0]
                    flushed += 1
                    if line != prev + 1:
                        bursts += 1
                    prev = line
            else:
                in_burst = False
                for line in range(first, last + 1):
                    entry = dirty.pop(line, None)
                    if entry is None:
                        in_burst = False
                        continue
                    durable[line << _LINE_SHIFT : (line + 1) << _LINE_SHIFT] = entry[0]
                    flushed += 1
                    if not in_burst:
                        bursts += 1
                        in_burst = True
        else:
            flushed, bursts = self._flush_segments(first, last, bi, bj)
        stats = self.stats
        stats.flushes += 1
        stats.flushed_lines += flushed
        stats.flush_bursts += bursts if self.coalesce_flushes else flushed
        if persisted:
            media.on_persist(persisted)

    def _flush_segments(self, first: int, last: int, bi: int, bj: int) -> Tuple[int, int]:
        """Flush ``[first, last]`` when it overlaps bulk records
        ``self._bulk[bi:bj]``.

        Builds the line-ordered segment list across both overlay
        representations so burst accounting is identical to a per-line
        scan, splitting bulk ranges that the flush only partially covers.
        """
        dirty = self._dirty
        durable = self._durable
        if len(dirty) * 4 < last - first + 1:
            segs: List[Tuple[int, int, Optional[List]]] = [
                (ln, ln + 1, None) for ln in dirty if first <= ln <= last
            ]
        else:
            segs = [(ln, ln + 1, None) for ln in range(first, last + 1) if ln in dirty]
        for rec in self._bulk[bi:bj]:
            start = rec[0]
            end = start + (len(rec[1]) >> _LINE_SHIFT)
            segs.append((max(start, first), min(end, last + 1), rec))
        segs.sort(key=_REC_START)
        flushed = 0
        bursts = 0
        prev_end = -1
        # remnants of split bulk records, in ascending order: records are
        # disjoint and processed in line order, so left/right remnants
        # come out sorted and replace the overlapped slice in place
        remnants: List[List] = []
        for s, e, rec in segs:
            if s != prev_end:
                bursts += 1
            prev_end = e
            flushed += e - s
            if rec is None:
                for line in range(s, e):
                    durable[line << _LINE_SHIFT : (line + 1) << _LINE_SHIFT] = dirty.pop(
                        line
                    )[0]
            else:
                start = rec[0]
                buf = rec[1]
                durable[s << _LINE_SHIFT : e << _LINE_SHIFT] = buf[
                    (s - start) << _LINE_SHIFT : (e - start) << _LINE_SHIFT
                ]
                if s > start:
                    remnants.append([start, buf[: (s - start) << _LINE_SHIFT]])
                end = start + (len(buf) >> _LINE_SHIFT)
                if e < end:
                    remnants.append([e, buf[(e - start) << _LINE_SHIFT :]])
        self._bulk[bi:bj] = remnants
        return flushed, bursts

    def fence(self) -> None:
        """Ordering fence; a cost-model event (flushes persist eagerly)."""
        with self._mutex:
            self._fence_locked()

    def _fence_locked(self) -> None:
        if self._crash_countdown is not None:
            self._tick_failpoint()
        if self._crashed:
            raise DeviceCrashedError("device crashed; call restart() first")
        self.stats.fences += 1

    def persist_all(self) -> None:
        """Flush every dirty line (used at pool close / test setup)."""
        with self._mutex:
            self._persist_all_locked()

    def _persist_all_locked(self) -> None:
        if self._crashed:
            raise DeviceCrashedError("device crashed; call restart() first")
        durable = self._durable
        segs: List[Tuple[int, int, Optional[bytearray]]] = [
            (ln, ln + 1, None) for ln in self._dirty
        ]
        segs.extend(
            (start, start + (len(buf) >> _LINE_SHIFT), buf) for start, buf in self._bulk
        )
        segs.sort(key=lambda s: s[0])
        dirty = self._dirty
        media = self._media
        persisted: Optional[List[int]] = None
        if media is not None:
            persisted = []
            for s, e, _buf in segs:
                persisted.extend(range(s, e))
        flushed = 0
        bursts = 0
        prev_end = -1
        for s, e, buf in segs:
            if s != prev_end:
                bursts += 1
            prev_end = e
            flushed += e - s
            if buf is None:
                durable[s << _LINE_SHIFT : e << _LINE_SHIFT] = dirty[s][0]
            else:
                durable[s << _LINE_SHIFT : e << _LINE_SHIFT] = buf
        dirty.clear()
        self._bulk = []
        stats = self.stats
        stats.flushes += 1
        stats.flushed_lines += flushed
        stats.flush_bursts += bursts if self.coalesce_flushes else flushed
        if persisted:
            media.on_persist(persisted)

    @property
    def dirty_lines(self) -> int:
        """Number of cache lines with unflushed stores."""
        return len(self._dirty) + sum(
            len(buf) >> _LINE_SHIFT for _start, buf in self._bulk
        )

    # -- failure injection ---------------------------------------------------

    def crash(
        self,
        policy: CrashPolicy = CrashPolicy.DROP_ALL,
        survival_prob: float = 0.5,
    ) -> None:
        """Power-fail the device.

        Unflushed dirty words are resolved according to ``policy`` in
        ascending line order (the canonical order both device
        implementations share, so a fixed seed yields the same surviving
        words on either); the volatile overlay is then discarded and the
        device refuses access until :meth:`restart`.
        """
        if self._crashed:
            return
        if self.fingerprint_crashes:
            self.last_crash_fingerprint = self.overlay_fingerprint()
        durable = self._durable
        media = self._media
        crash_lines: Optional[List[Tuple[int, bool]]] = None
        if policy is not CrashPolicy.DROP_ALL:
            if media is not None:
                full = policy is CrashPolicy.KEEP_ALL
                crash_lines = [
                    (line, full and mask == _FULL_MASK)
                    for line, (_buf, mask) in self._dirty.items()
                ]
                for start, buf in self._bulk:
                    crash_lines.extend(
                        (start + i, full) for i in range(len(buf) >> _LINE_SHIFT)
                    )
            entries: List[Tuple[int, object, int]] = [
                (line, buf, mask) for line, (buf, mask) in self._dirty.items()
            ]
            for start, buf in self._bulk:
                view = memoryview(buf)
                for i in range(len(buf) >> _LINE_SHIFT):
                    entries.append(
                        (start + i, view[i << _LINE_SHIFT : (i + 1) << _LINE_SHIFT], _FULL_MASK)
                    )
            entries.sort(key=lambda entry: entry[0])
            if policy is CrashPolicy.KEEP_ALL:
                for line, buf, mask in entries:
                    base = line << _LINE_SHIFT
                    if mask == _FULL_MASK:
                        durable[base : base + CACHE_LINE] = buf
                        continue
                    for w in range(_WORDS_PER_LINE):
                        if mask & (1 << w):
                            off = w * WORD
                            durable[base + off : base + off + WORD] = buf[off : off + WORD]
            else:
                rng = self._rng.random
                for line, buf, mask in entries:
                    base = line << _LINE_SHIFT
                    for w in range(_WORDS_PER_LINE):
                        if mask & (1 << w) and rng() < survival_prob:
                            off = w * WORD
                            durable[base + off : base + off + WORD] = buf[off : off + WORD]
        if crash_lines:
            media.on_crash(crash_lines)
        self._dirty.clear()
        self._bulk = []
        self._crashed = True

    def restart(self) -> None:
        """Bring the device back after a crash; durable state is intact."""
        self._crashed = False

    @property
    def crashed(self) -> bool:
        return self._crashed

    # -- introspection (tests) ----------------------------------------------

    def overlay_fingerprint(self) -> str:
        """Digest of (durable bytes, dirty-line set) — the crash state.

        Two moments with the same fingerprint have identical durable
        media *and* identical unflushed overlay contents/word masks, so
        every crash policy resolves them to the same reachable set of
        post-crash images.  The crash-consistency checker uses this to
        explore each distinct pre-crash state exactly once.
        """
        digest = hashlib.sha1(bytes(self._durable))
        for line in sorted(self._dirty):
            buf, mask = self._dirty[line]
            digest.update(struct.pack("<QQ", line, mask))
            digest.update(bytes(buf))
        for start, buf in self._bulk:
            digest.update(struct.pack("<Qq", start, -1))
            digest.update(bytes(buf))
        if self._media is not None:
            # equal bytes with different dead/stuck maps are different
            # crash states (one read raises, the other doesn't)
            digest.update(self._media.fingerprint_token())
        return digest.hexdigest()

    def clone_durable(self, seed: Optional[int] = None) -> "NVMDevice":
        """A fresh device with this device's durable media and no overlay.

        The clone starts in the same crashed/running state but with no
        scheduled fail-point.  The checker replays recovery from one
        post-crash image many times (once per nested crash point), which
        needs the image preserved across destructive recovery runs.
        """
        clone = NVMDevice(
            self.size,
            model=self.model,
            seed=seed,
            coalesce_flushes=self.coalesce_flushes,
            lock_mode=self.lock_mode,
        )
        clone._durable[:] = self._durable
        clone._crashed = self._crashed
        clone.fingerprint_crashes = self.fingerprint_crashes
        if self._media is not None:
            # media state is part of the durable image: a clone must not
            # resurrect dead lines or forget the checksum sidecar
            clone._media = self._media.clone(clone)
        return clone

    def durable_read(self, addr: int, size: int) -> bytes:
        """Read the media directly, ignoring the volatile overlay.

        Used by tests to assert what would survive a crash; not part of
        the programming model.
        """
        if addr < 0 or size < 0 or addr + size > self.size:
            raise OutOfBoundsError(
                f"access [{addr}, {addr + size}) outside device of {self.size} bytes"
            )
        if self._media is not None:
            self._media.check_read(addr, size)
        return bytes(self._durable[addr : addr + size])
