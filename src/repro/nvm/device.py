"""Simulated byte-addressable non-volatile memory device.

The device models the hardware contract Kamino-Tx is built on:

* CPU stores land in a **volatile cache-line overlay**, not on the media.
* A line becomes durable only when explicitly flushed (``clwb`` +
  ``sfence``), modelled by :meth:`NVMDevice.flush` / :meth:`NVMDevice.fence`.
* On a **crash**, unflushed lines are lost — except that the cache may have
  evicted any of them at any earlier moment, so each dirty 8-byte word
  independently may or may not have reached the media.  This reproduces the
  torn-write / reordering failure window that the paper's recovery protocol
  must tolerate.

Python cannot control real persistence ordering (the reason this paper is
hard to reproduce natively), so all durability semantics in this repository
flow through this class; see DESIGN.md §1 for the substitution argument.
"""

from __future__ import annotations

import random
import threading
from enum import Enum
from typing import Dict, Optional, Tuple

from ..errors import DeviceCrashedError, OutOfBoundsError
from .latency import CACHE_LINE, WORD, NVDIMM, LatencyModel
from .stats import NVMStats

_WORDS_PER_LINE = CACHE_LINE // WORD
_FULL_MASK = (1 << _WORDS_PER_LINE) - 1


class CrashPolicy(Enum):
    """What happens to unflushed dirty words at crash time.

    ``DROP_ALL`` — no unflushed data survives (cache never evicted).
    ``KEEP_ALL`` — everything survives (cache evicted everything just
    before power loss); equivalent to eADR platforms.
    ``RANDOM`` — each dirty 8-byte word survives independently with a
    configurable probability; the adversarial case recovery must handle.
    """

    DROP_ALL = "drop_all"
    KEEP_ALL = "keep_all"
    RANDOM = "random"


class NVMDevice:
    """A fixed-size region of simulated NVM with cache semantics.

    Args:
        size: device capacity in bytes.
        model: latency model used by cost accounting (stored for
            convenience; the device itself only counts primitives).
        seed: seed for the crash-survival RNG, making torn-write
            experiments reproducible.
        coalesce_flushes: enable the write-combining flush coalescer.
            Runs of *adjacent* dirty lines inside one flush (or
            ``persist_all``) drain as a single charged burst: the burst
            pays one full ``flush_line_ns`` round trip and each extra
            line streams at the model's ``burst_line_ns``.  Durability is
            byte-identical either way — exactly the same lines persist at
            exactly the same program points; only the cost accounting
            (``NVMStats.flush_bursts``) changes, which the crash-state
            equivalence property test asserts.
    """

    def __init__(
        self,
        size: int,
        model: LatencyModel = NVDIMM,
        seed: Optional[int] = None,
        coalesce_flushes: bool = False,
    ):
        if size <= 0:
            raise ValueError("device size must be positive")
        self.size = size
        self.model = model
        self.coalesce_flushes = coalesce_flushes
        self.stats = NVMStats()
        self._durable = bytearray(size)
        # line index -> (line buffer, dirty-word bitmask)
        self._dirty: Dict[int, Tuple[bytearray, int]] = {}
        self._crashed = False
        self._rng = random.Random(seed)
        # one mutex serialises all device access: worker threads and the
        # background syncer share the overlay dictionaries (cheap under
        # the GIL; the benchmarks run single-threaded traces anyway)
        self._mutex = threading.RLock()
        # scheduled fail-point: crash after N more mutating operations
        self._crash_countdown: Optional[int] = None
        self._crash_policy = CrashPolicy.DROP_ALL
        self._crash_survival = 0.5

    # -- helpers -----------------------------------------------------------

    def _check(self, addr: int, size: int) -> None:
        if self._crashed:
            raise DeviceCrashedError("device crashed; call restart() first")
        if addr < 0 or size < 0 or addr + size > self.size:
            raise OutOfBoundsError(
                f"access [{addr}, {addr + size}) outside device of {self.size} bytes"
            )

    def _tick_failpoint(self) -> None:
        """Count down a scheduled crash; fires *before* the current op."""
        if self._crash_countdown is None:
            return
        if self._crash_countdown <= 0:
            self._crash_countdown = None
            self.crash(self._crash_policy, self._crash_survival)
            raise DeviceCrashedError("scheduled fail-point reached")
        self._crash_countdown -= 1

    def schedule_crash(
        self,
        after_ops: int,
        policy: CrashPolicy = CrashPolicy.DROP_ALL,
        survival_prob: float = 0.5,
    ) -> None:
        """Arm a fail-point: the device power-fails after ``after_ops``
        more mutating operations (stores, flushes, fences, copies).

        This lets tests crash *inside* an engine's commit or sync code at
        a deterministic, enumerable point — the property-based crash
        suites sweep ``after_ops`` across a whole transaction.
        """
        if after_ops < 0:
            raise ValueError("after_ops must be non-negative")
        self._crash_countdown = after_ops
        self._crash_policy = policy
        self._crash_survival = survival_prob

    def cancel_scheduled_crash(self) -> None:
        self._crash_countdown = None

    def _line_buffer(self, line: int) -> Tuple[bytearray, int]:
        """Return (buffer, mask) for ``line``, faulting it in if clean."""
        entry = self._dirty.get(line)
        if entry is None:
            base = line * CACHE_LINE
            entry = (bytearray(self._durable[base : base + CACHE_LINE]), 0)
            self._dirty[line] = entry
        return entry

    # -- data path ---------------------------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        """Load ``size`` bytes at ``addr``, observing unflushed stores."""
        with self._mutex:
            return self._read_locked(addr, size)

    def _read_locked(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        self.stats.loads += 1
        self.stats.load_bytes += size
        if not self._dirty:
            return bytes(self._durable[addr : addr + size])
        out = bytearray(self._durable[addr : addr + size])
        first = addr // CACHE_LINE
        last = (addr + size - 1) // CACHE_LINE
        for line in range(first, last + 1):
            entry = self._dirty.get(line)
            if entry is None:
                continue
            base = line * CACHE_LINE
            lo = max(addr, base)
            hi = min(addr + size, base + CACHE_LINE)
            out[lo - addr : hi - addr] = entry[0][lo - base : hi - base]
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Store ``data`` at ``addr`` into the volatile overlay."""
        with self._mutex:
            self._write_locked(addr, data)

    def _write_locked(self, addr: int, data: bytes) -> None:
        size = len(data)
        self._tick_failpoint()
        self._check(addr, size)
        self.stats.stores += 1
        self.stats.store_bytes += size
        pos = 0
        while pos < size:
            at = addr + pos
            line = at // CACHE_LINE
            base = line * CACHE_LINE
            off = at - base
            take = min(CACHE_LINE - off, size - pos)
            buf, mask = self._line_buffer(line)
            buf[off : off + take] = data[pos : pos + take]
            first_word = off // WORD
            last_word = (off + take - 1) // WORD
            for w in range(first_word, last_word + 1):
                mask |= 1 << w
            self._dirty[line] = (buf, mask)
            pos += take

    def copy(self, dst: int, src: int, size: int) -> None:
        """Device-internal memcpy; charged to the copy counters.

        The copy reads through the overlay (sees unflushed stores) and
        writes into the overlay like ordinary stores; callers must still
        flush the destination for durability.
        """
        with self._mutex:
            self._check(src, size)
            self._check(dst, size)
            data = self._read_locked(src, size)
            # Undo the read accounting: copies are charged separately so
            # the cost model can price bulk moves by bandwidth, not per
            # line.
            self.stats.loads -= 1
            self.stats.load_bytes -= size
            self._write_locked(dst, data)
            self.stats.stores -= 1
            self.stats.store_bytes -= size
            self.stats.copies += 1
            self.stats.copy_bytes += size

    # -- persistence -------------------------------------------------------

    def flush(self, addr: int, size: int) -> None:
        """Flush all cache lines covering ``[addr, addr+size)`` to media."""
        if size <= 0:
            return
        with self._mutex:
            self._flush_locked(addr, size)

    def _flush_locked(self, addr: int, size: int) -> None:
        self._tick_failpoint()
        self._check(addr, size)
        first = addr // CACHE_LINE
        last = (addr + size - 1) // CACHE_LINE
        flushed = 0
        bursts = 0
        in_burst = False
        for line in range(first, last + 1):
            entry = self._dirty.pop(line, None)
            if entry is None:
                in_burst = False
                continue
            base = line * CACHE_LINE
            self._durable[base : base + CACHE_LINE] = entry[0]
            flushed += 1
            if not in_burst:
                bursts += 1
                in_burst = True
        self.stats.flushes += 1
        self.stats.flushed_lines += flushed
        self.stats.flush_bursts += bursts if self.coalesce_flushes else flushed

    def fence(self) -> None:
        """Ordering fence; a cost-model event (flushes persist eagerly)."""
        with self._mutex:
            self._tick_failpoint()
            if self._crashed:
                raise DeviceCrashedError("device crashed; call restart() first")
            self.stats.fences += 1

    def persist_all(self) -> None:
        """Flush every dirty line (used at pool close / test setup)."""
        if self._crashed:
            raise DeviceCrashedError("device crashed; call restart() first")
        flushed = 0
        bursts = 0
        prev_line = None
        for line in sorted(self._dirty):
            buf, _mask = self._dirty[line]
            base = line * CACHE_LINE
            self._durable[base : base + CACHE_LINE] = buf
            flushed += 1
            if prev_line is None or line != prev_line + 1:
                bursts += 1
            prev_line = line
        self._dirty.clear()
        self.stats.flushes += 1
        self.stats.flushed_lines += flushed
        self.stats.flush_bursts += bursts if self.coalesce_flushes else flushed

    @property
    def dirty_lines(self) -> int:
        """Number of cache lines with unflushed stores."""
        return len(self._dirty)

    # -- failure injection ---------------------------------------------------

    def crash(
        self,
        policy: CrashPolicy = CrashPolicy.DROP_ALL,
        survival_prob: float = 0.5,
    ) -> None:
        """Power-fail the device.

        Unflushed dirty words are resolved according to ``policy``; the
        volatile overlay is then discarded and the device refuses access
        until :meth:`restart`.
        """
        if self._crashed:
            return
        for line, (buf, mask) in self._dirty.items():
            base = line * CACHE_LINE
            for w in range(_WORDS_PER_LINE):
                if not mask & (1 << w):
                    continue
                if policy is CrashPolicy.DROP_ALL:
                    survives = False
                elif policy is CrashPolicy.KEEP_ALL:
                    survives = True
                else:
                    survives = self._rng.random() < survival_prob
                if survives:
                    off = w * WORD
                    self._durable[base + off : base + off + WORD] = buf[off : off + WORD]
        self._dirty.clear()
        self._crashed = True

    def restart(self) -> None:
        """Bring the device back after a crash; durable state is intact."""
        self._crashed = False

    @property
    def crashed(self) -> bool:
        return self._crashed

    # -- introspection (tests) ----------------------------------------------

    def durable_read(self, addr: int, size: int) -> bytes:
        """Read the media directly, ignoring the volatile overlay.

        Used by tests to assert what would survive a crash; not part of
        the programming model.
        """
        if addr < 0 or size < 0 or addr + size > self.size:
            raise OutOfBoundsError(
                f"access [{addr}, {addr + size}) outside device of {self.size} bytes"
            )
        return bytes(self._durable[addr : addr + size])
