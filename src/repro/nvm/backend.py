"""Byte-store backend selection: pure-python vs numpy-vectorized device.

numpy is an **optional** dependency (``pip install repro[numpy]``).  When
it is importable, :class:`~repro.nvm.numpy_device.NumpyNVMDevice` — a
contiguous ``uint8`` byte store with line-granularity dirty bitmaps and
bulk memmove/compare as array ops — becomes the default device the
stack builders construct.  Without it everything falls back to the
pure-python :class:`~repro.nvm.device.NVMDevice`; the two are
bit-identical in every simulated observable (the invariance contract,
docs/INTERNALS.md §8, enforced by the differential suites), so the
backend only ever changes wall-clock time.

Selection order for :func:`resolve_backend`:

1. an explicit backend name passed by the caller;
2. the ``REPRO_NVM_BACKEND`` environment variable (``pure`` | ``numpy``
   | ``auto``), which is how the CI matrix leg runs the whole tier-1
   suite with numpy masked out;
3. auto-detection: ``numpy`` when importable, else ``pure``.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple, Type

from .device import NVMDevice

PURE = "pure"
NUMPY = "numpy"
AUTO = "auto"

_ENV_VAR = "REPRO_NVM_BACKEND"

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _np  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

#: process-wide default; ``None`` means "consult env var, then detect"
_default: Optional[str] = None


def available_backends() -> Tuple[str, ...]:
    """Backends this interpreter can actually construct."""
    return (PURE, NUMPY) if HAVE_NUMPY else (PURE,)


def set_default_backend(name: Optional[str]) -> None:
    """Pin the process-wide default backend (``None`` restores
    auto-detection).  The wall-clock harness uses this to measure the
    same benchmark under both backends in one process."""
    if name is not None:
        name = resolve_backend(name)
    global _default
    _default = name


def default_backend() -> str:
    """The backend ``resolve_backend(None)`` would pick right now."""
    if _default is not None:
        return _default
    env = os.environ.get(_ENV_VAR, "").strip().lower()
    if env and env != AUTO:
        return resolve_backend(env)
    return NUMPY if HAVE_NUMPY else PURE


def resolve_backend(name: Optional[str]) -> str:
    """Normalize a requested backend name to a constructible one.

    ``None``/``"auto"`` defer to :func:`default_backend`; asking for
    ``"numpy"`` without numpy installed is an error (auto-detection
    never raises — it just falls back to ``"pure"``).
    """
    if name is None or name == AUTO:
        return default_backend()
    if name == PURE:
        return PURE
    if name == NUMPY:
        if not HAVE_NUMPY:
            raise RuntimeError(
                "backend 'numpy' requested but numpy is not importable; "
                "install the repro[numpy] extra or use backend='pure'"
            )
        return NUMPY
    raise ValueError(f"unknown NVM backend {name!r}; choose from {(PURE, NUMPY, AUTO)}")


def device_class(backend: Optional[str] = None) -> Type[NVMDevice]:
    """The device class implementing ``backend`` (resolved)."""
    if resolve_backend(backend) == NUMPY:
        from .numpy_device import NumpyNVMDevice

        return NumpyNVMDevice
    return NVMDevice


def make_device(size: int, backend: Optional[str] = None, **kwargs) -> NVMDevice:
    """Construct a device on the resolved backend.

    This is the constructor every stack builder goes through, so one
    ``set_default_backend`` (or ``REPRO_NVM_BACKEND``) switches the
    device under benchmarks, engines, replication nodes, the placement
    service, and the crash checker alike.
    """
    return device_class(backend)(size, **kwargs)
