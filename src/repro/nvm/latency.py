"""Latency cost models for the simulated NVM device.

The paper evaluates on DRAM-emulated NVM (NVDIMM-like) and argues the
benefits of Kamino-Tx grow on slower media because copying costs more.
A :class:`LatencyModel` assigns a nanosecond cost to each primitive the
device exposes; :class:`~repro.nvm.stats.NVMStats` counts primitives and
this model converts counts into simulated time.

Costs are first-order: a load/store touches whole cache lines, a flush
(clwb + eventual drain) has a fixed cost per line, a fence has a fixed
cost, and bulk copies are dominated by per-byte bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

CACHE_LINE = 64
"""Cache line size in bytes; the granularity of flushes and dirtiness."""

WORD = 8
"""Power-fail atomic store granularity in bytes (x86 guarantees 8-byte)."""


@dataclass(frozen=True)
class LatencyModel:
    """Nanosecond costs of NVM primitives.

    Attributes:
        read_line_ns: cost of loading one cache line.
        write_line_ns: cost of storing into one cache line (to the cache).
        flush_line_ns: cost of flushing one dirty line to the media.
        fence_ns: cost of an ordering fence (sfence / drain).
        byte_copy_ns: marginal cost per byte of bulk memcpy between two
            NVM locations (covers the load+store pipeline).
        bandwidth_gbps: sustained media bandwidth, used by the simulator's
            shared-bandwidth resource to model contention across threads.
        burst_line_ns: cost of each *additional* adjacent line when the
            device's write-combining coalescer drains a run of contiguous
            dirty lines in one burst: the first line of a run pays the
            full ``flush_line_ns`` round trip, the rest stream at media
            write bandwidth.  ``0.0`` means "no burst discount" (each
            line costs ``flush_line_ns``, the pre-coalescer model).
    """

    name: str
    read_line_ns: float
    write_line_ns: float
    flush_line_ns: float
    fence_ns: float
    byte_copy_ns: float
    bandwidth_gbps: float
    burst_line_ns: float = 0.0

    def effective_burst_line_ns(self) -> float:
        """Per-line cost inside a coalesced burst (falls back to the full
        flush cost when the profile declares no discount)."""
        return self.burst_line_ns if self.burst_line_ns > 0 else self.flush_line_ns

    def copy_ns(self, nbytes: int) -> float:
        """Cost of copying ``nbytes`` between two NVM locations."""
        return nbytes * self.byte_copy_ns

    def flush_ns(self, nbytes: int) -> float:
        """Cost of flushing a dirty range covering ``nbytes``."""
        lines = (nbytes + CACHE_LINE - 1) // CACHE_LINE
        return lines * self.flush_line_ns


#: Battery-backed DRAM / NVDIMM-N: the fastest NVM available today and the
#: configuration the paper measures (DRAM emulation on Azure A9).
NVDIMM = LatencyModel(
    name="nvdimm",
    read_line_ns=80.0,
    write_line_ns=86.0,
    flush_line_ns=100.0,
    fence_ns=30.0,
    byte_copy_ns=0.25,
    bandwidth_gbps=30.0,
    burst_line_ns=35.0,
)

#: Plain DRAM (no persistence cost beyond caches) — lower bound.
DRAM = LatencyModel(
    name="dram",
    read_line_ns=70.0,
    write_line_ns=70.0,
    flush_line_ns=60.0,
    fence_ns=20.0,
    byte_copy_ns=0.2,
    bandwidth_gbps=40.0,
    burst_line_ns=25.0,
)

#: PCM / 3D-XPoint-like media with asymmetric, slower writes.  The paper
#: predicts Kamino-Tx's advantage grows here because critical-path copies
#: take longer.
PCM_LIKE = LatencyModel(
    name="pcm",
    read_line_ns=150.0,
    write_line_ns=500.0,
    flush_line_ns=700.0,
    fence_ns=30.0,
    byte_copy_ns=1.5,
    bandwidth_gbps=8.0,
    burst_line_ns=250.0,
)

#: Persistent CPU caches / whole-system persistence (paper §2, "Hardware
#: Support"): ``clwb`` becomes a near-free hint and the fence trivial,
#: because the platform guarantees cached stores survive power loss
#: (eADR).  "It also eliminates the overhead of flushing caches for
#: persistence.  However, atomicity is still necessary" — Kamino-Tx
#: "does not require but can reap the same benefits from such novel
#: hardware support".  Pair this profile with
#: ``CrashPolicy.KEEP_ALL`` in crash experiments.
EADR = LatencyModel(
    name="eadr",
    read_line_ns=80.0,
    write_line_ns=86.0,
    flush_line_ns=2.0,
    fence_ns=2.0,
    byte_copy_ns=0.25,
    bandwidth_gbps=30.0,
    burst_line_ns=2.0,
)

PROFILES = {m.name: m for m in (NVDIMM, DRAM, PCM_LIKE, EADR)}


def profile(name: str) -> LatencyModel:
    """Look up a latency profile by name, raising ``KeyError`` if unknown."""
    return PROFILES[name]
