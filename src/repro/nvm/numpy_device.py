"""numpy-vectorized :class:`NVMDevice` byte store.

Same simulated semantics, different representation: the durable media
and the volatile overlay are contiguous ``uint8`` arrays (padded to a
cache-line multiple) and dirty-line tracking is a per-line ``uint8``
dirty-word bitmask array, so bulk memmove / compare / flush walks and
crash resolution become array operations instead of per-line dict
churn.  Sub-line operations — the dominant case for 64-byte objects —
go through plain ``memoryview`` aliases of the same buffers, which
keeps them at pure-python dict speed instead of paying numpy's
scalar-indexing overhead; only operations spanning ``_VEC_LINES`` or
more lines take the vectorized paths.

The invariance contract (docs/INTERNALS.md §8) applies with full force:
durable bytes, :class:`~repro.nvm.stats.NVMStats` (including
flush-burst accounting), crash-surviving state under every
:class:`~repro.nvm.device.CrashPolicy`, RNG consumption order for
``RANDOM`` survival, media-hook call sequences, *and*
``overlay_fingerprint`` digests must be bit-identical to the
pure-python device.  The last one is the subtle part: the pure device
hashes its per-line dict entries and its bulk-range records
differently, so this class tracks which dirty lines belong to bulk
copy records (``_ranges``) purely to reproduce the same digests — the
bytes all live in the one overlay array either way.

Burst accounting note: the pure device's segment walk increments the
burst counter exactly once per maximal run of consecutive dirty lines
inside the flushed window, regardless of whether those lines are dict
entries or bulk-record lines — so counting runs over the mask array is
provably identical.
"""

from __future__ import annotations

import hashlib
import struct
from bisect import insort
from typing import List, Optional, Tuple

import numpy as np

from ..errors import DeviceCrashedError
from .device import (
    _BULK_THRESHOLD,
    _FULL_MASK,
    _LINE_MASK,
    _LINE_SHIFT,
    _REC_START,
    _SPAN_MASKS,
    _WORD_SHIFT,
    _WORDS_PER_LINE,
    CrashPolicy,
    NVMDevice,
)
from .latency import CACHE_LINE, WORD

#: operations spanning at least this many lines use the vectorized
#: array paths; anything smaller stays on the memoryview fast paths
_VEC_LINES = 8
_VEC_BYTES = _VEC_LINES * CACHE_LINE

#: windows up to this many lines are classified by one combined-integer
#: scan of their mask bytes (see below) instead of numpy reductions —
#: covers every KV-value-sized flush/read (a 1 KB value is 16 lines)
#: where numpy's per-call overhead would dominate the actual work
_PY_LINES = 32

#: SWAR constants for an O(1) "any zero byte in the low n bytes" test on
#: a combined little-endian mask integer: a window of n lines is fully
#: dirty iff none of its n mask bytes is zero, i.e.
#: ``(x - LOW[n]) & ~x & HIGH[n] == 0``
_SWAR_LOW = [0] + [
    int.from_bytes(b"\x01" * n, "little") for n in range(1, _PY_LINES + 1)
]
_SWAR_HIGH = [0] + [
    int.from_bytes(b"\x80" * n, "little") for n in range(1, _PY_LINES + 1)
]

#: preallocated mask-byte runs, so clearing / fully-dirtying a small
#: window is one slice store with no per-call bytes allocation
_ZEROS = [b"\x00" * n for n in range(_PY_LINES + 1)]
_FULLS = [bytes([_FULL_MASK]) * n for n in range(_PY_LINES + 1)]


class NumpyNVMDevice(NVMDevice):
    """Drop-in :class:`NVMDevice` with a numpy byte store.

    Construct via :func:`repro.nvm.backend.make_device` rather than
    directly, so code paths degrade to the pure device when numpy is
    not installed.
    """

    backend = "numpy"

    # -- storage -----------------------------------------------------------

    def _alloc_store(self, size: int) -> None:
        n_lines = (size + _LINE_MASK) >> _LINE_SHIFT
        padded = n_lines << _LINE_SHIFT
        self._n_lines = n_lines
        # durable media and volatile overlay, padded so whole-line slice
        # ops never clamp; padding bytes stay zero on both sides forever
        # (no store can reach them), so copying them around is harmless
        self._np_durable = np.zeros(padded, dtype=np.uint8)
        self._np_overlay = np.zeros(padded, dtype=np.uint8)
        #: per-line dirty-word bitmask; 0 == clean line
        self._np_masks = np.zeros(n_lines, dtype=np.uint8)
        # memoryview aliases: python-speed scalar/small-slice access to
        # the exact same memory the vectorized paths operate on
        self._mv_durable = memoryview(self._np_durable)
        self._mv_overlay = memoryview(self._np_overlay)
        self._mv_masks = memoryview(self._np_masks)
        # the public durable buffer is clamped to the device size — the
        # media-fault model, the scrubber, and tests index/slice it
        self._durable = self._mv_durable[:size] if padded != size else self._mv_durable
        #: bulk copy records as [start_line, n_lines], sorted/disjoint.
        #: The *data* lives in the overlay like any dirty line; this
        #: list only preserves the pure device's fingerprint structure.
        self._ranges: List[List[int]] = []
        #: total dirty lines (== np.count_nonzero(self._np_masks)),
        #: maintained incrementally so the hot paths never scan
        self._dirty_count = 0

    # -- bulk-range bookkeeping --------------------------------------------

    def _range_clean(self, addr: int, size: int) -> bool:
        if not self._dirty_count:
            return True
        first = addr >> _LINE_SHIFT
        last = (addr + size - 1) >> _LINE_SHIFT
        return not self._np_masks[first : last + 1].any()

    def _trim_ranges(self, first: int, last: int) -> None:
        """Drop the flushed window ``[first, last]`` from the bulk
        records, keeping left/right remnants (mirrors the pure device's
        ``_flush_segments`` record splitting)."""
        out = []
        for start, n in self._ranges:
            end = start + n
            if end <= first or start > last:
                out.append([start, n])
                continue
            if start < first:
                out.append([start, first - start])
            if end > last + 1:
                out.append([last + 1, end - last - 1])
        self._ranges = out

    # -- raw overlay data path (no stats, no checks) -----------------------

    def _peek(self, addr: int, size: int) -> bytes:
        if not self._dirty_count:
            if size > _VEC_BYTES:
                return self._np_durable[addr : addr + size].tobytes()
            return bytes(self._mv_durable[addr : addr + size])
        first = addr >> _LINE_SHIFT
        last = (addr + size - 1) >> _LINE_SHIFT
        masks = self._mv_masks
        if first == last:
            if masks[first]:
                return bytes(self._mv_overlay[addr : addr + size])
            return bytes(self._mv_durable[addr : addr + size])
        if last - first < _PY_LINES:
            # one buffer scan classifies the whole window: the combined
            # little-endian integer of the per-line mask bytes is 0 iff
            # every line is clean — the dominant case for index reads
            combined = int.from_bytes(masks[first : last + 1], "little")
            dmv = self._mv_durable
            if not combined:
                return bytes(dmv[addr : addr + size])
            end = addr + size
            omv = self._mv_overlay
            n = last - first + 1
            if not ((combined - _SWAR_LOW[n]) & ~combined & _SWAR_HIGH[n]):
                return bytes(omv[addr:end])
            out = bytearray(dmv[addr:end])
            for i in range(n):
                if combined & (0xFF << (i << 3)):
                    base = (first + i) << _LINE_SHIFT
                    lo = addr if addr > base else base
                    hi = base + CACHE_LINE
                    if end < hi:
                        hi = end
                    out[lo - addr : hi - addr] = omv[lo:hi]
            return bytes(out)
        window = self._np_masks[first : last + 1]
        ndirty = int(np.count_nonzero(window))
        if not ndirty:
            return self._np_durable[addr : addr + size].tobytes()
        if ndirty == last - first + 1:
            return self._np_overlay[addr : addr + size].tobytes()
        return self._compose_arr(addr, size, first, window).tobytes()

    def _compose_arr(self, addr: int, size: int, first: int, window) -> np.ndarray:
        """Mixed clean/dirty multi-line read: durable base + overlay
        bytes for dirty lines, as a fresh array."""
        out = self._np_durable[addr : addr + size].copy()
        sel = np.repeat(window != 0, CACHE_LINE)
        off = addr - (first << _LINE_SHIFT)
        np.copyto(out, self._np_overlay[addr : addr + size], where=sel[off : off + size])
        return out

    def _peek_arr(self, addr: int, size: int) -> np.ndarray:
        """Overlay-aware read as a fresh uint8 array (vectorized)."""
        du = self._np_durable
        if not self._dirty_count:
            return du[addr : addr + size].copy()
        first = addr >> _LINE_SHIFT
        last = (addr + size - 1) >> _LINE_SHIFT
        window = self._np_masks[first : last + 1]
        ndirty = int(np.count_nonzero(window))
        if not ndirty:
            return du[addr : addr + size].copy()
        if ndirty == last - first + 1:
            return self._np_overlay[addr : addr + size].copy()
        return self._compose_arr(addr, size, first, window)

    def _poke(self, addr: int, data) -> None:
        size = len(data)
        if not size:
            return
        first = addr >> _LINE_SHIFT
        last = (addr + size - 1) >> _LINE_SHIFT
        masks = self._mv_masks
        if first == last:
            off = addr & _LINE_MASK
            m = masks[first]
            if not m:
                base = first << _LINE_SHIFT
                self._mv_overlay[base : base + CACHE_LINE] = self._mv_durable[
                    base : base + CACHE_LINE
                ]
                self._dirty_count += 1
                masks[first] = _SPAN_MASKS[off >> _WORD_SHIFT][
                    (off + size - 1) >> _WORD_SHIFT
                ]
            elif m != _FULL_MASK:
                masks[first] = m | _SPAN_MASKS[off >> _WORD_SHIFT][
                    (off + size - 1) >> _WORD_SHIFT
                ]
            self._mv_overlay[addr : addr + size] = data
            return
        n = last - first + 1
        if n <= _PY_LINES:
            omv = self._mv_overlay
            dmv = self._mv_durable
            combined = int.from_bytes(masks[first : last + 1], "little")
            if not combined:
                # every covered line is clean: one window-wide fault-in
                lo = first << _LINE_SHIFT
                hi = (last + 1) << _LINE_SHIFT
                omv[lo:hi] = dmv[lo:hi]
                self._dirty_count += n
            elif (combined - _SWAR_LOW[n]) & ~combined & _SWAR_HIGH[n]:
                faulted = 0
                for i in range(n):
                    if not combined & (0xFF << (i << 3)):
                        base = (first + i) << _LINE_SHIFT
                        omv[base : base + CACHE_LINE] = dmv[base : base + CACHE_LINE]
                        faulted += 1
                self._dirty_count += faulted
            omv[addr : addr + size] = data
            off = addr & _LINE_MASK
            masks[first] |= _SPAN_MASKS[off >> _WORD_SHIFT][_WORDS_PER_LINE - 1]
            masks[last] |= _SPAN_MASKS[0][((addr + size - 1) & _LINE_MASK) >> _WORD_SHIFT]
            if n > 2:
                masks[first + 1 : last] = _FULLS[n - 2]
            return
        # wide store: interior lines are fully overwritten, so only the
        # partial head/tail lines can need a durable fault-in — O(1)
        # work regardless of span width
        window = self._np_masks[first : last + 1]
        prev_dirty = int(np.count_nonzero(window))
        omv = self._mv_overlay
        end = addr + size
        if addr & _LINE_MASK and not masks[first]:
            base = first << _LINE_SHIFT
            omv[base:addr] = self._mv_durable[base:addr]
        tail_end = (last << _LINE_SHIFT) + CACHE_LINE
        if end != tail_end and not masks[last]:
            omv[end:tail_end] = self._mv_durable[end:tail_end]
        if isinstance(data, np.ndarray):
            self._np_overlay[addr:end] = data
        else:
            omv[addr:end] = data
        window[1:-1] = _FULL_MASK
        off = addr & _LINE_MASK
        masks[first] |= _SPAN_MASKS[off >> _WORD_SHIFT][_WORDS_PER_LINE - 1]
        masks[last] |= _SPAN_MASKS[0][((end - 1) & _LINE_MASK) >> _WORD_SHIFT]
        self._dirty_count += last - first + 1 - prev_dirty

    # -- data path ---------------------------------------------------------

    def _read_locked(self, addr: int, size: int) -> bytes:
        # fused entry point: the base method's bookkeeping plus the
        # single-line/clean _peek fast paths inlined (identical stats
        # and media calls, fewer python frames per 8-byte field read)
        if self._crashed or addr < 0 or size < 0 or addr + size > self.size:
            self._check(addr, size)
        stats = self.stats
        stats.loads += 1
        stats.load_bytes += size
        if self._media is not None:
            self._media.check_read(addr, size)
        if not self._dirty_count:
            if size > _VEC_BYTES:
                return self._np_durable[addr : addr + size].tobytes()
            return bytes(self._mv_durable[addr : addr + size])
        first = addr >> _LINE_SHIFT
        if first == (addr + size - 1) >> _LINE_SHIFT:
            if self._mv_masks[first]:
                return bytes(self._mv_overlay[addr : addr + size])
            return bytes(self._mv_durable[addr : addr + size])
        return self._peek(addr, size)

    def _write_locked(self, addr: int, data) -> None:
        if self._crash_countdown is not None:
            self._tick_failpoint()
        size = len(data)
        if self._crashed or addr < 0 or addr + size > self.size:
            self._check(addr, size)
        stats = self.stats
        stats.stores += 1
        stats.store_bytes += size
        if not size:
            return
        first = addr >> _LINE_SHIFT
        if first == (addr + size - 1) >> _LINE_SHIFT:
            # inlined single-line _poke
            masks = self._mv_masks
            off = addr & _LINE_MASK
            m = masks[first]
            if not m:
                base = first << _LINE_SHIFT
                self._mv_overlay[base : base + CACHE_LINE] = self._mv_durable[
                    base : base + CACHE_LINE
                ]
                self._dirty_count += 1
                masks[first] = _SPAN_MASKS[off >> _WORD_SHIFT][
                    (off + size - 1) >> _WORD_SHIFT
                ]
            elif m != _FULL_MASK:
                masks[first] = m | _SPAN_MASKS[off >> _WORD_SHIFT][
                    (off + size - 1) >> _WORD_SHIFT
                ]
            self._mv_overlay[addr : addr + size] = data
            return
        self._poke(addr, data)

    def _copy_locked(self, dst: int, src: int, size: int, chunks: int = 1) -> None:
        if self._crash_countdown is not None:
            self._tick_failpoint()
        self._check(src, size)
        self._check(dst, size)
        stats = self.stats
        stats.copies += chunks
        stats.copy_bytes += size
        if self._media is not None:
            self._media.check_read(src, size)
        if (
            size >= _BULK_THRESHOLD
            and dst & _LINE_MASK == 0
            and size & _LINE_MASK == 0
            and self._range_clean(dst, size)
        ):
            # the mirror-seed fast path: one array memmove plus a bulk
            # record so fingerprints match the pure device's
            data = self._peek_arr(src, size)
            self._np_overlay[dst : dst + size] = data
            start = dst >> _LINE_SHIFT
            n = size >> _LINE_SHIFT
            self._np_masks[start : start + n] = _FULL_MASK
            self._dirty_count += n
            insort(self._ranges, [start, n], key=_REC_START)
            return
        if size >= _VEC_BYTES:
            self._poke(dst, self._peek_arr(src, size))
        else:
            self._poke(dst, self._peek(src, size))

    # -- persistence -------------------------------------------------------

    def _flush_locked(self, addr: int, size: int) -> None:
        if self._crash_countdown is not None:
            self._tick_failpoint()
        self._check(addr, size)
        flushed = 0
        bursts = 0
        persisted: Optional[List[int]] = None
        if self._dirty_count:
            first = addr >> _LINE_SHIFT
            last = (addr + size - 1) >> _LINE_SHIFT
            if last - first < _PY_LINES:
                masks = self._mv_masks
                combined = int.from_bytes(masks[first : last + 1], "little")
                if combined:
                    dmv = self._mv_durable
                    omv = self._mv_overlay
                    n = last - first + 1
                    if not ((combined - _SWAR_LOW[n]) & ~combined & _SWAR_HIGH[n]):
                        # fully dirty window: one memcpy, one burst
                        lo = first << _LINE_SHIFT
                        hi = (last + 1) << _LINE_SHIFT
                        dmv[lo:hi] = omv[lo:hi]
                        masks[first : last + 1] = _ZEROS[n]
                        flushed = n
                        bursts = 1
                        if self._media is not None:
                            persisted = list(range(first, last + 1))
                    else:
                        prev = -2
                        lines = [] if self._media is not None else None
                        for i in range(n):
                            if combined & (0xFF << (i << 3)):
                                ln = first + i
                                base = ln << _LINE_SHIFT
                                dmv[base : base + CACHE_LINE] = omv[
                                    base : base + CACHE_LINE
                                ]
                                masks[ln] = 0
                                flushed += 1
                                if ln != prev + 1:
                                    bursts += 1
                                prev = ln
                                if lines is not None:
                                    lines.append(ln)
                        persisted = lines
            else:
                flushed, bursts, persisted = self._flush_window_vec(first, last)
            if flushed:
                self._dirty_count -= flushed
                if self._ranges:
                    self._trim_ranges(first, last)
        stats = self.stats
        stats.flushes += 1
        stats.flushed_lines += flushed
        stats.flush_bursts += bursts if self.coalesce_flushes else flushed
        if persisted:
            self._media.on_persist(persisted)

    def _flush_window_vec(
        self, first: int, last: int
    ) -> Tuple[int, int, Optional[List[int]]]:
        window = self._np_masks[first : last + 1]
        flushed = int(np.count_nonzero(window))
        if not flushed:
            return 0, 0, None
        dmv = self._mv_durable
        omv = self._mv_overlay
        if flushed == last - first + 1:
            # fully dirty window — one memcpy, one burst
            lo = first << _LINE_SHIFT
            hi = (last + 1) << _LINE_SHIFT
            dmv[lo:hi] = omv[lo:hi]
            persisted = (
                list(range(first, last + 1)) if self._media is not None else None
            )
            window[:] = 0
            return flushed, 1, persisted
        # sparse window: one memcpy per run of consecutive dirty lines
        # (the run count doubles as the burst count)
        lines = (np.nonzero(window)[0] + first).tolist()
        bursts = 0
        run_start = prev = -2
        for ln in lines:
            if ln != prev + 1:
                if bursts:
                    dmv[run_start << _LINE_SHIFT : (prev + 1) << _LINE_SHIFT] = omv[
                        run_start << _LINE_SHIFT : (prev + 1) << _LINE_SHIFT
                    ]
                bursts += 1
                run_start = ln
            prev = ln
        dmv[run_start << _LINE_SHIFT : (prev + 1) << _LINE_SHIFT] = omv[
            run_start << _LINE_SHIFT : (prev + 1) << _LINE_SHIFT
        ]
        persisted = lines if self._media is not None else None
        window[:] = 0
        return flushed, bursts, persisted

    def _persist_all_locked(self) -> None:
        if self._crashed:
            raise DeviceCrashedError("device crashed; call restart() first")
        flushed = 0
        bursts = 0
        persisted: Optional[List[int]] = None
        if self._dirty_count:
            flushed, bursts, persisted = self._flush_window_vec(0, self._n_lines - 1)
            self._dirty_count = 0
            self._ranges = []
        stats = self.stats
        stats.flushes += 1
        stats.flushed_lines += flushed
        stats.flush_bursts += bursts if self.coalesce_flushes else flushed
        if persisted:
            self._media.on_persist(persisted)

    @property
    def dirty_lines(self) -> int:
        return self._dirty_count

    # -- failure injection -------------------------------------------------

    def crash(
        self,
        policy: CrashPolicy = CrashPolicy.DROP_ALL,
        survival_prob: float = 0.5,
    ) -> None:
        if self._crashed:
            return
        if self.fingerprint_crashes:
            self.last_crash_fingerprint = self.overlay_fingerprint()
        media = self._media
        crash_lines: Optional[List[Tuple[int, bool]]] = None
        if policy is not CrashPolicy.DROP_ALL and self._dirty_count:
            masks = self._np_masks
            idx = np.nonzero(masks)[0]
            lines = idx.tolist()
            mvals = masks[idx].tolist()
            if media is not None:
                full = policy is CrashPolicy.KEEP_ALL
                crash_lines = [
                    (ln, full and m == _FULL_MASK) for ln, m in zip(lines, mvals)
                ]
            if policy is CrashPolicy.KEEP_ALL:
                # expand dirty-word bits to a per-byte selector and copy
                words = np.unpackbits(masks, bitorder="little").reshape(
                    -1, _WORDS_PER_LINE
                )
                np.copyto(
                    self._np_durable.reshape(-1, WORD),
                    self._np_overlay.reshape(-1, WORD),
                    where=words.reshape(-1, 1).astype(bool),
                )
            else:
                # RANDOM: the per-word python loop is deliberate — RNG
                # draws must match the pure device draw-for-draw
                # (ascending line order, word order within the line)
                rng = self._rng.random
                dmv = self._mv_durable
                omv = self._mv_overlay
                for ln, m in zip(lines, mvals):
                    base = ln << _LINE_SHIFT
                    for w in range(_WORDS_PER_LINE):
                        if m & (1 << w) and rng() < survival_prob:
                            off = base + (w << _WORD_SHIFT)
                            dmv[off : off + WORD] = omv[off : off + WORD]
        if crash_lines:
            media.on_crash(crash_lines)
        self._np_masks[:] = 0
        self._dirty_count = 0
        self._ranges = []
        self._crashed = True

    # -- introspection (tests) ---------------------------------------------

    def overlay_fingerprint(self) -> str:
        digest = hashlib.sha1(self._np_durable[: self.size])
        if self._dirty_count:
            masks = self._np_masks
            idx = np.nonzero(masks)[0]
            ranges = self._ranges
            if ranges:
                covered = np.zeros(self._n_lines, dtype=bool)
                for start, n in ranges:
                    covered[start : start + n] = True
                idx = idx[~covered[idx]]
            omv = self._mv_overlay
            size = self.size
            pack = struct.pack
            update = digest.update
            for ln, m in zip(idx.tolist(), masks[idx].tolist()):
                base = ln << _LINE_SHIFT
                update(pack("<QQ", ln, m))
                end = base + CACHE_LINE
                update(omv[base : size if end > size else end])
            ov = self._np_overlay
            for start, n in ranges:
                update(pack("<Qq", start, -1))
                update(ov[start << _LINE_SHIFT : (start + n) << _LINE_SHIFT])
        if self._media is not None:
            digest.update(self._media.fingerprint_token())
        return digest.hexdigest()

    def clone_durable(self, seed: Optional[int] = None) -> "NumpyNVMDevice":
        clone = NumpyNVMDevice(
            self.size,
            model=self.model,
            seed=seed,
            coalesce_flushes=self.coalesce_flushes,
            lock_mode=self.lock_mode,
        )
        clone._np_durable[:] = self._np_durable
        clone._crashed = self._crashed
        clone.fingerprint_crashes = self.fingerprint_crashes
        if self._media is not None:
            clone._media = self._media.clone(clone)
        return clone
