"""Simulated non-volatile memory substrate.

This package stands in for the NVDIMM hardware and ``clwb``/``sfence``
persistence primitives the paper's testbed provides.  See DESIGN.md §1
for the substitution rationale.
"""

from .backend import (
    HAVE_NUMPY,
    available_backends,
    default_backend,
    device_class,
    make_device,
    resolve_backend,
    set_default_backend,
)
from .device import CrashPolicy, NVMDevice
from .latency import (
    CACHE_LINE,
    DRAM,
    EADR,
    NVDIMM,
    PCM_LIKE,
    PROFILES,
    WORD,
    LatencyModel,
    profile,
)
from .pool import DATA_START, MAX_REGIONS, PmemPool, PmemRegion
from .reference import ReferenceNVMDevice
from .stats import NVMStats, StatsStack

if HAVE_NUMPY:
    from .numpy_device import NumpyNVMDevice  # noqa: F401

__all__ = [
    "CACHE_LINE",
    "HAVE_NUMPY",
    "WORD",
    "CrashPolicy",
    "DATA_START",
    "DRAM",
    "EADR",
    "LatencyModel",
    "MAX_REGIONS",
    "NVDIMM",
    "NVMDevice",
    "NVMStats",
    "PCM_LIKE",
    "PROFILES",
    "PmemPool",
    "PmemRegion",
    "ReferenceNVMDevice",
    "StatsStack",
    "available_backends",
    "default_backend",
    "device_class",
    "make_device",
    "profile",
    "resolve_backend",
    "set_default_backend",
]
