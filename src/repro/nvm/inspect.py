"""Introspection helpers: human-readable reports on pools and heaps.

Used by the CLI (``python -m repro info``) and handy in tests and
debugging sessions: what regions exist, how full the allocator is, what
state the intent-log slots are in.
"""

from __future__ import annotations

from typing import Dict, List

from .device import NVMDevice
from .pool import PmemPool


def describe_pool(pool: PmemPool) -> Dict:
    """Structural summary of a pool: header fields + region table."""
    regions = [
        {"name": r.name, "offset": r.offset, "size": r.size}
        for r in sorted(pool.regions.values(), key=lambda r: r.offset)
    ]
    return {
        "device_bytes": pool.device.size,
        "root_offset": pool.root_offset,
        "free_bytes": pool.free_bytes,
        "regions": regions,
    }


def describe_heap(heap) -> Dict:
    """Allocator occupancy: per-class chunk counts and byte usage."""
    alloc = heap.allocator
    classes: Dict[int, Dict[str, int]] = {}
    for ci, cls in enumerate(alloc._chunk_class):
        if cls == 0:
            continue
        entry = classes.setdefault(cls, {"chunks": 0, "free_slots": 0, "slots": 0})
        entry["chunks"] += 1
        entry["free_slots"] += alloc._free_counts[ci]
        entry["slots"] += alloc.chunk_size // cls
    return {
        "heap_bytes": heap.region.size,
        "capacity_bytes": alloc.capacity_bytes,
        "allocated_bytes": alloc.allocated_bytes,
        "utilization": (
            alloc.allocated_bytes / alloc.capacity_bytes if alloc.capacity_bytes else 0.0
        ),
        "chunks_total": alloc.n_chunks,
        "chunks_unassigned": len(alloc._unassigned),
        "classes": classes,
    }


def describe_log(log_manager) -> Dict:
    """Durable intent-log slot states (scans NVM, not volatile state)."""
    states: Dict[str, int] = {}
    for rec in log_manager.scan():
        states[rec.state.name] = states.get(rec.state.name, 0) + 1
    busy = sum(states.values())
    return {
        "slots": log_manager.n_slots,
        "free": log_manager.n_slots - busy,
        "non_free_durable": states,
    }


def format_report(heap) -> str:
    """Multi-section plain-text report for a live heap (CLI output)."""
    lines: List[str] = []
    pool_info = describe_pool(heap.pool)
    lines.append(f"pool: {pool_info['device_bytes']:,} bytes, "
                 f"root @ {pool_info['root_offset']:#x}, "
                 f"{pool_info['free_bytes']:,} unreserved")
    lines.append("regions:")
    for region in pool_info["regions"]:
        lines.append(
            f"  {region['name']:<14} @ {region['offset']:>10,}  "
            f"{region['size']:>12,} bytes"
        )
    heap_info = describe_heap(heap)
    lines.append(
        f"heap: {heap_info['allocated_bytes']:,} / "
        f"{heap_info['capacity_bytes']:,} bytes allocated "
        f"({heap_info['utilization']:.1%}); "
        f"{heap_info['chunks_unassigned']}/{heap_info['chunks_total']} chunks unassigned"
    )
    for cls, entry in sorted(heap_info["classes"].items()):
        used = entry["slots"] - entry["free_slots"]
        lines.append(
            f"  class {cls:>5}B: {entry['chunks']} chunk(s), "
            f"{used}/{entry['slots']} slots used"
        )
    log = getattr(heap.engine, "log", None)
    if log is not None:
        log_info = describe_log(log)
        lines.append(
            f"intent log: {log_info['free']}/{log_info['slots']} slots durably free"
            + (f"; busy: {log_info['non_free_durable']}" if log_info["non_free_durable"] else "")
        )
    backup = getattr(heap.engine, "backup", None)
    if backup is not None:
        lines.append(f"backup: {backup.storage_bytes:,} bytes provisioned "
                     f"({type(backup).__name__})")
    return "\n".join(lines)
