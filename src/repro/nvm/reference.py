"""A deliberately naive NVM device: the oracle for the optimized one.

:class:`ReferenceNVMDevice` implements the exact same device contract as
:class:`~repro.nvm.device.NVMDevice` with none of its fast paths: every
store walks its words in a plain loop, every flush scans its line range,
copies move data line by line, the lock is always taken, and no bulk
dirty-range representation exists.  It is the executable specification
of the *invariance contract* (docs/INTERNALS.md): the differential tests
drive randomized operation / crash / recovery sequences through both
devices and assert bit-identical durable bytes, crash-surviving state,
and :class:`~repro.nvm.stats.NVMStats`.

It is also the "naive" baseline the wall-clock benchmark harness
(:mod:`repro.bench.wallclock`) measures speedups against, which keeps
the committed ``BENCH_*.json`` trajectory honest: the denominator is a
living, tested implementation, not a number from an old commit.
"""

from __future__ import annotations

from typing import Optional

from ..errors import DeviceCrashedError
from .device import _WORDS_PER_LINE, CrashPolicy, NVMDevice
from .latency import CACHE_LINE, WORD, NVDIMM, LatencyModel


class ReferenceNVMDevice(NVMDevice):
    """Per-word-loop implementation of the device contract.

    Accepts (and ignores) ``lock_mode`` so it can be dropped in wherever
    a device class is configurable; it always locks.
    """

    def __init__(
        self,
        size: int,
        model: LatencyModel = NVDIMM,
        seed: Optional[int] = None,
        coalesce_flushes: bool = False,
        lock_mode: str = "locked",
    ):
        super().__init__(
            size,
            model=model,
            seed=seed,
            coalesce_flushes=coalesce_flushes,
            lock_mode="locked",
        )

    # -- raw overlay data path ---------------------------------------------

    def _line_buffer(self, line: int):
        """Return (buffer, mask) for ``line``, faulting it in if clean."""
        entry = self._dirty.get(line)
        if entry is None:
            base = line * CACHE_LINE
            entry = (bytearray(self._durable[base : base + CACHE_LINE]), 0)
            self._dirty[line] = entry
        return entry

    def _peek(self, addr: int, size: int) -> bytes:
        out = bytearray(self._durable[addr : addr + size])
        first = addr // CACHE_LINE
        last = (addr + size - 1) // CACHE_LINE
        for line in range(first, last + 1):
            entry = self._dirty.get(line)
            if entry is None:
                continue
            base = line * CACHE_LINE
            lo = max(addr, base)
            hi = min(addr + size, base + CACHE_LINE)
            out[lo - addr : hi - addr] = entry[0][lo - base : hi - base]
        return bytes(out)

    def _poke(self, addr: int, data) -> None:
        size = len(data)
        pos = 0
        while pos < size:
            at = addr + pos
            line = at // CACHE_LINE
            base = line * CACHE_LINE
            off = at - base
            take = min(CACHE_LINE - off, size - pos)
            buf, mask = self._line_buffer(line)
            buf[off : off + take] = data[pos : pos + take]
            first_word = off // WORD
            last_word = (off + take - 1) // WORD
            for w in range(first_word, last_word + 1):
                mask |= 1 << w
            self._dirty[line] = (buf, mask)
            pos += take

    # -- device contract, naively ------------------------------------------

    def _read_locked(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        self.stats.loads += 1
        self.stats.load_bytes += size
        if self._media is not None:
            self._media.check_read(addr, size)
        return self._peek(addr, size)

    def _write_locked(self, addr: int, data) -> None:
        self._tick_failpoint()
        self._check(addr, len(data))
        self.stats.stores += 1
        self.stats.store_bytes += len(data)
        self._poke(addr, data)

    def _copy_locked(self, dst: int, src: int, size: int, chunks: int = 1) -> None:
        self._tick_failpoint()
        self._check(src, size)
        self._check(dst, size)
        self.stats.copies += chunks
        self.stats.copy_bytes += size
        if self._media is not None:
            self._media.check_read(src, size)
        self._poke(dst, self._peek(src, size))

    def _flush_locked(self, addr: int, size: int) -> None:
        self._tick_failpoint()
        self._check(addr, size)
        first = addr // CACHE_LINE
        last = (addr + size - 1) // CACHE_LINE
        flushed = 0
        bursts = 0
        in_burst = False
        persisted = []
        for line in range(first, last + 1):
            entry = self._dirty.pop(line, None)
            if entry is None:
                in_burst = False
                continue
            base = line * CACHE_LINE
            self._durable[base : base + CACHE_LINE] = entry[0]
            persisted.append(line)
            flushed += 1
            if not in_burst:
                bursts += 1
                in_burst = True
        self.stats.flushes += 1
        self.stats.flushed_lines += flushed
        self.stats.flush_bursts += bursts if self.coalesce_flushes else flushed
        if persisted and self._media is not None:
            self._media.on_persist(persisted)

    def _persist_all_locked(self) -> None:
        if self._crashed:
            raise DeviceCrashedError("device crashed; call restart() first")
        flushed = 0
        bursts = 0
        prev_line = None
        persisted = []
        for line in sorted(self._dirty):
            buf, _mask = self._dirty[line]
            base = line * CACHE_LINE
            self._durable[base : base + CACHE_LINE] = buf
            persisted.append(line)
            flushed += 1
            if prev_line is None or line != prev_line + 1:
                bursts += 1
            prev_line = line
        self._dirty.clear()
        self.stats.flushes += 1
        self.stats.flushed_lines += flushed
        self.stats.flush_bursts += bursts if self.coalesce_flushes else flushed
        if persisted and self._media is not None:
            self._media.on_persist(persisted)

    def crash(
        self,
        policy: CrashPolicy = CrashPolicy.DROP_ALL,
        survival_prob: float = 0.5,
    ) -> None:
        if self._crashed:
            return
        if self.fingerprint_crashes:
            self.last_crash_fingerprint = self.overlay_fingerprint()
        crash_lines = None
        if self._media is not None and policy is not CrashPolicy.DROP_ALL:
            full = policy is CrashPolicy.KEEP_ALL
            full_mask = (1 << _WORDS_PER_LINE) - 1
            crash_lines = [
                (line, full and mask == full_mask)
                for line, (_buf, mask) in self._dirty.items()
            ]
        for line in sorted(self._dirty):
            buf, mask = self._dirty[line]
            base = line * CACHE_LINE
            for w in range(_WORDS_PER_LINE):
                if not mask & (1 << w):
                    continue
                if policy is CrashPolicy.DROP_ALL:
                    survives = False
                elif policy is CrashPolicy.KEEP_ALL:
                    survives = True
                else:
                    survives = self._rng.random() < survival_prob
                if survives:
                    off = w * WORD
                    self._durable[base + off : base + off + WORD] = buf[off : off + WORD]
        if crash_lines:
            self._media.on_crash(crash_lines)
        self._dirty.clear()
        self._crashed = True
