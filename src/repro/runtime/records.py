"""Per-transaction cost records and aggregate simulation results.

These used to live in :mod:`repro.bench.harness`; they moved here when
cost accounting was unified under :mod:`repro.runtime` so the context,
the scheduler, and the benchmark layer all speak the same record type.
:mod:`repro.bench` re-exports them for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List


@dataclass(frozen=True, slots=True)
class TxRecord:
    """Costs and footprint of one executed transaction."""

    kind: str
    crit_ns: float
    async_ns: float
    crit_bytes: int
    async_bytes: int
    crit_copy_bytes: int
    n_intents: int
    write_set: FrozenSet[int]
    read_set: FrozenSet[int]


@dataclass
class ReplayResult:
    """Aggregate metrics of one simulated multi-client run."""

    engine: str
    workload: str
    nthreads: int
    ops: int
    duration_ns: float
    latencies_ns: List[float] = field(repr=False, default_factory=list)
    latencies_by_kind: Dict[str, List[float]] = field(repr=False, default_factory=dict)

    @property
    def throughput_kops(self) -> float:
        """Committed operations per second, in thousands."""
        if self.duration_ns <= 0:
            return 0.0
        return self.ops / self.duration_ns * 1e9 / 1e3

    @property
    def mean_latency_us(self) -> float:
        if not self.latencies_ns:
            return 0.0
        return sum(self.latencies_ns) / len(self.latencies_ns) / 1e3

    def mean_latency_us_of(self, kind: str) -> float:
        """Mean latency of one operation kind (e.g. 'update')."""
        lats = self.latencies_by_kind.get(kind, ())
        if not lats:
            return 0.0
        return sum(lats) / len(lats) / 1e3

    def percentile_latency_us(self, pct: float) -> float:
        if not self.latencies_ns:
            return 0.0
        data = sorted(self.latencies_ns)
        idx = min(len(data) - 1, int(pct / 100.0 * len(data)))
        return data[idx] / 1e3
