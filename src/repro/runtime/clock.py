"""The unified virtual clock every runtime layer charges.

Before the :mod:`repro.runtime` refactor each layer kept its own notion
of virtual time: the device counted primitives, the benchmark harness
re-derived nanoseconds in a separate replay pass, and the replication
cluster ran its own :class:`~repro.sim.events.EventSimulator`.  A
:class:`SimClock` is the single time source an
:class:`~repro.runtime.context.ExecutionContext` hands to all of them:
persistence primitives advance it inline, and the event simulator binds
to it so scheduled callbacks and inline charges observe the same ``now``.

The uniform ``reset()`` / ``snapshot()`` contract (shared with
:class:`~repro.nvm.stats.NVMStats` and
:class:`~repro.sim.resources.FIFOServer`) lets a benchmark zero every
accounting surface between engine runs with one call and assert that no
counter leaked.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClockSnapshot:
    """An immutable point-in-time view of a :class:`SimClock`."""

    now: float
    advances: int

    def delta(self, since: "ClockSnapshot") -> float:
        """Nanoseconds elapsed since the ``since`` snapshot."""
        return self.now - since.now


class SimClock:
    """A monotonic virtual-nanosecond clock.

    ``now`` is a plain attribute so an
    :class:`~repro.sim.events.EventSimulator` can bind to the clock and
    drive it from its event queue; inline cost charging uses
    :meth:`advance` / :meth:`advance_to`.
    """

    __slots__ = ("now", "advances")

    def __init__(self) -> None:
        self.now: float = 0.0
        self.advances: int = 0

    def advance(self, ns: float) -> float:
        """Move forward by ``ns`` nanoseconds; returns the new time."""
        if ns < 0:
            raise ValueError(f"cannot advance the clock backwards ({ns} ns)")
        self.now += ns
        self.advances += 1
        return self.now

    def advance_to(self, time_ns: float) -> float:
        """Move forward to an absolute time (no-op if already past it)."""
        if time_ns > self.now:
            self.now = time_ns
            self.advances += 1
        return self.now

    # -- uniform reset/snapshot contract ------------------------------------

    def reset(self) -> None:
        """Return to time zero (between benchmark runs)."""
        self.now = 0.0
        self.advances = 0

    def snapshot(self) -> ClockSnapshot:
        """An independent, immutable copy of the current state."""
        return ClockSnapshot(now=self.now, advances=self.advances)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimClock now={self.now:.1f}ns advances={self.advances}>"
