"""Unified execution runtime: context, clock, registry, online scheduler.

Everything that *prices* persistence lives here.  The layers below
(:mod:`repro.nvm`, :mod:`repro.tx`, :mod:`repro.heap`) move bytes; the
layers above (:mod:`repro.bench`, :mod:`repro.replication`,
:mod:`repro.cli`) ask this package what those bytes cost and when they
land, through one :class:`~repro.runtime.context.ExecutionContext`.

Heavier submodules (context, online) are imported lazily so that engine
modules can import :mod:`repro.runtime.registry` at class-definition
time without creating an import cycle through the heap.
"""

from .clock import ClockSnapshot, SimClock
from .registry import (
    EngineCapabilities,
    EngineInfo,
    engine_info,
    find_registered,
    make_engine,
    register_engine,
    registered_engines,
    unregister_engine,
)

__all__ = [
    "ClockSnapshot",
    "ContextSnapshot",
    "EngineCapabilities",
    "EngineInfo",
    "ExecutionContext",
    "ReplayResult",
    "SharedResources",
    "SimClock",
    "TxRecord",
    "engine_info",
    "find_registered",
    "make_engine",
    "register_engine",
    "registered_engines",
    "replay_records",
    "run_online",
    "unregister_engine",
]

_LAZY = {
    "ContextSnapshot": ("repro.runtime.context", "ContextSnapshot"),
    "ExecutionContext": ("repro.runtime.context", "ExecutionContext"),
    "SharedResources": ("repro.runtime.context", "SharedResources"),
    "ReplayResult": ("repro.runtime.records", "ReplayResult"),
    "TxRecord": ("repro.runtime.records", "TxRecord"),
    "replay_records": ("repro.runtime.online", "replay_records"),
    "run_online": ("repro.runtime.online", "run_online"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.runtime' has no attribute '{name}'") from None
    from importlib import import_module

    value = getattr(import_module(module_name), attr)
    globals()[name] = value
    return value
