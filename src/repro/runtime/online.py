"""Multi-client simulation over shared resources — online or from traces.

One scheduler covers both execution modes:

* **Online** (:func:`run_online`) — N closed-loop clients share one
  :class:`~repro.runtime.context.ExecutionContext`.  When a client's turn
  arrives in virtual time, its next operation is executed *functionally
  at that moment* through :meth:`ExecutionContext.run_tx`, and the
  measured costs immediately flow through the shared bandwidth and
  log-management servers.  There is no separate trace pass: dependent
  transactions execute in virtual-time order, so same-key contention is
  exact, not approximated from a serially collected trace.

* **Trace replay** (:func:`replay_records`) — pre-collected
  :class:`~repro.runtime.records.TxRecord` streams are driven through the
  identical event flow.  This is what :func:`repro.bench.replay` wraps;
  it exists for experiments that deliberately reuse one trace across
  thread counts or latency models.

Each operation's life cycle (ported from the original two-phase
harness, and unchanged so single-client results are bit-identical):
lock acquisition over the record's read/write sets, serialized log
management, bandwidth transfer of critical-path bytes, commit, then —
for engines whose capabilities declare ``locks_released_after_sync`` —
the asynchronous backup sync whose completion finally releases the
write locks.  All resource requests arrive in nondecreasing virtual
time, which FIFO servers require.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..nvm.latency import NVDIMM, LatencyModel
from ..sim.events import EventSimulator
from ..sim.resources import cost_model_for
from .context import ExecutionContext, SharedResources
from .records import ReplayResult, TxRecord

__all__ = ["replay_records", "run_online"]


class _RecordQueueSource:
    """Pre-collected records, split round-robin across clients."""

    __slots__ = ("_queues", "_cursor")

    def __init__(self, records: Sequence[TxRecord], nclients: int):
        self._queues = [list(records[i::nclients]) for i in range(nclients)]
        self._cursor = [0] * nclients

    def peek(self, client: int) -> Optional[TxRecord]:
        queue = self._queues[client]
        idx = self._cursor[client]
        return queue[idx] if idx < len(queue) else None

    def advance(self, client: int) -> None:
        self._cursor[client] += 1


class _InlineSource:
    """Executes each client's next operation on demand, at its virtual
    start time, through the shared context."""

    __slots__ = ("_ctx", "_streams", "_cursor", "_cache", "_executor", "_kind_of")

    def __init__(
        self,
        ctx: ExecutionContext,
        streams: Sequence[Sequence[object]],
        executor: Callable[[object], None],
        kind_of: Callable[[object], str],
    ):
        self._ctx = ctx
        self._streams = [list(stream) for stream in streams]
        self._cursor = [0] * len(self._streams)
        self._cache: List[Optional[TxRecord]] = [None] * len(self._streams)
        self._executor = executor
        self._kind_of = kind_of

    def peek(self, client: int) -> Optional[TxRecord]:
        if self._cache[client] is None:
            stream = self._streams[client]
            idx = self._cursor[client]
            if idx >= len(stream):
                return None
            op = stream[idx]
            # execute now — the virtual moment this client starts the op;
            # the scheduler threads the resulting record through the
            # shared servers, so charging stays inline
            self._cache[client] = self._ctx.run_tx(
                self._kind_of(op), lambda: self._executor(op), charge=False
            )
        return self._cache[client]

    def advance(self, client: int) -> None:
        self._cursor[client] += 1
        self._cache[client] = None


class VirtualClients:
    """Event-driven closed-loop clients over shared resources."""

    __slots__ = (
        "source",
        "sim",
        "resources",
        "cost",
        "bandwidth",
        "serial",
        "ns_per_byte",
        "model_byte_copy_ns",
        "sync_lag_ns",
        "nclients",
        "locked",
        "waiters",
        "ready_since",
        "latencies",
        "latencies_by_kind",
        "end_time",
        "dependent_waits",
    )

    def __init__(
        self,
        source,
        nclients: int,
        engine_name: str,
        model: LatencyModel,
        sync_lag_ns: float,
        resources: Optional[SharedResources] = None,
        events: Optional[EventSimulator] = None,
    ):
        self.source = source
        self.sim = events if events is not None else EventSimulator()
        self.resources = resources if resources is not None else SharedResources(model)
        self.cost = cost_model_for(engine_name)
        self.bandwidth = self.resources.bandwidth
        self.serial = self.resources.log_mgmt
        self.ns_per_byte = 1.0 / model.bandwidth_gbps
        self.model_byte_copy_ns = model.byte_copy_ns
        self.sync_lag_ns = sync_lag_ns
        self.nclients = nclients
        self.locked: Dict[int, bool] = {}
        self.waiters: Dict[int, List[int]] = {}
        self.ready_since = [0.0] * nclients
        self.latencies: List[float] = []
        self.latencies_by_kind: Dict[str, List[float]] = {}
        self.end_time = 0.0
        self.dependent_waits = 0

    def run(self) -> None:
        for client in range(self.nclients):
            self.sim.schedule(0.0, self._try_start, client)
        self.sim.run()

    def _try_start(self, client: int) -> None:
        rec = self.source.peek(client)
        if rec is None:
            return
        for off in rec.write_set | rec.read_set:
            if self.locked.get(off):
                # block on the first conflicting object; retried when it
                # is released (a dependent transaction, paper Figure 6)
                self.waiters.setdefault(off, []).append(client)
                self.dependent_waits += 1
                return
        for off in rec.write_set:
            self.locked[off] = True
        # serialized log/lock management: the per-intent software cost
        # always extends the critical path; the log-arena memcpy's
        # *service* time is already inside crit_ns (it is a device copy),
        # so it contributes only mutual exclusion — queueing delay — here.
        # Read-lock acquires pass through the same table mutex for the
        # profiles that charge them (read-set entries the tx only reads).
        read_locks = len(rec.read_set - rec.write_set)
        software = (
            self.cost.serial_ns_per_intent * rec.n_intents
            + self.cost.serial_ns_per_read_lock * read_locks
        )
        service = software
        if self.cost.serial_includes_copy:
            service += rec.crit_copy_bytes * self.model_byte_copy_ns
        done = self.serial.request(self.sim.now, service)
        queue_delay = done - self.sim.now - service
        # local (non-serialized) software runs on this client's own
        # timeline — striped-lock work other clients never queue behind
        local = (
            self.cost.local_ns_per_intent * rec.n_intents
            + self.cost.local_ns_per_read_lock * read_locks
        )
        self.sim.schedule(queue_delay + software + local, self._transfer_crit, client)

    def _transfer_crit(self, client: int) -> None:
        rec = self.source.peek(client)
        done = self.bandwidth.transfer(self.sim.now, rec.crit_bytes)
        crit_rest = max(0.0, rec.crit_ns - rec.crit_bytes * self.ns_per_byte)
        self.sim.at(done + crit_rest, self._commit, client)

    def _commit(self, client: int) -> None:
        rec = self.source.peek(client)
        now = self.sim.now
        latency = now - self.ready_since[client]
        self.latencies.append(latency)
        self.latencies_by_kind.setdefault(rec.kind, []).append(latency)
        self.end_time = max(self.end_time, now)
        if self.cost.locks_released_after_sync and rec.async_ns > 0:
            write_set = rec.write_set
            self.sim.schedule(self.sync_lag_ns, self._start_sync, write_set, rec)
        else:
            self._release(rec.write_set)
        self.source.advance(client)
        self.ready_since[client] = now
        self._try_start(client)

    def _start_sync(self, write_set, rec: TxRecord) -> None:
        done = self.bandwidth.transfer(self.sim.now, rec.async_bytes)
        rest = max(0.0, rec.async_ns - rec.async_bytes * self.ns_per_byte)
        self.sim.at(done + rest, self._release, write_set)

    def _release(self, write_set) -> None:
        woken: List[int] = []
        for off in write_set:
            self.locked[off] = False
            woken.extend(self.waiters.pop(off, ()))
        for client in woken:
            self.sim.schedule(0.0, self._try_start, client)

    def result(self, engine_name: str, workload: str, nclients: int) -> ReplayResult:
        return ReplayResult(
            engine=engine_name,
            workload=workload,
            nthreads=nclients,
            ops=len(self.latencies),
            duration_ns=self.end_time,
            latencies_ns=self.latencies,
            latencies_by_kind=self.latencies_by_kind,
        )


def replay_records(
    records: Sequence[TxRecord],
    nthreads: int,
    engine_name: str,
    workload: str = "",
    model: LatencyModel = NVDIMM,
    sync_lag_ns: float = 0.0,
    resources: Optional[SharedResources] = None,
) -> ReplayResult:
    """Drive a pre-collected cost trace with ``nthreads`` closed-loop
    clients (the two-phase path, kept for trace-reuse experiments).

    ``sync_lag_ns`` adds a fixed scheduling delay before the background
    syncer starts a committed transaction's backup sync (0 = the syncer
    is always ready; larger values stress dependent transactions).
    """
    if nthreads <= 0:
        raise ValueError("nthreads must be positive")
    source = _RecordQueueSource(records, nthreads)
    clients = VirtualClients(
        source, nthreads, engine_name, model, sync_lag_ns, resources=resources
    )
    clients.run()
    return clients.result(engine_name, workload, nthreads)


def run_online(
    ctx: ExecutionContext,
    ops: Sequence[object],
    executor: Callable[[object], None],
    nthreads: int,
    kind_of: Callable[[object], str] = lambda op: getattr(op, "kind", "op"),
    workload: str = "",
    sync_lag_ns: float = 0.0,
) -> ReplayResult:
    """Execute ``ops`` online under ``nthreads`` closed-loop clients.

    The operation stream is split round-robin across clients (matching
    the trace-replay client assignment); execution, cost charging, and
    shared-server queueing all happen inline on the context's clock and
    resource servers.  With one client this reproduces the two-phase
    harness exactly; with several, contention between dependent
    transactions is exact because each operation runs at the virtual
    time its client actually reaches it.
    """
    if nthreads <= 0:
        raise ValueError("nthreads must be positive")
    if ctx.engine_name is None:
        raise ValueError("context has no engine; build it via ExecutionContext.create")
    all_ops = list(ops)
    streams = [all_ops[i::nthreads] for i in range(nthreads)]
    source = _InlineSource(ctx, streams, executor, kind_of)
    clients = VirtualClients(
        source,
        nthreads,
        ctx.engine_name,
        ctx.model,
        sync_lag_ns,
        resources=ctx.resources,
        events=ctx.events,
    )
    clients.run()
    return clients.result(ctx.engine_name, workload, nthreads)
