"""The execution context: one object bundling device, clock, and servers.

Kamino-Tx's central claim is that atomicity schemes differ only in *what
bytes move when* under an identical hook surface.  The reproduction
honours that for correctness (``tx/_common.py``), but cost accounting
used to be fragmented: the device counted primitives, the benchmark
harness re-derived virtual time in a separate trace-replay pass, and the
replication layer kept its own simulator.  An :class:`ExecutionContext`
is the single runtime core every layer plugs into:

* the :class:`~repro.nvm.device.NVMDevice` (with its
  :class:`~repro.nvm.stats.NVMStats`) — what bytes moved;
* the :class:`~repro.nvm.latency.LatencyModel` — what each primitive
  costs;
* one :class:`~repro.runtime.clock.SimClock`, shared with the context's
  :class:`~repro.sim.events.EventSimulator` — when;
* :class:`SharedResources` — the contended FIFO servers (NVM bandwidth,
  serialized log management, replication nodes) that turn per-client
  costs into multi-client queueing.

:meth:`ExecutionContext.run_tx` executes one transaction and charges its
measured cost to the clock **inline**, at the moment the bytes move —
there is no separate replay pass.  The multi-client scheduler in
:mod:`repro.runtime.online` layers shared-server queueing on top of the
same objects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from ..nvm.device import NVMDevice
from ..nvm.latency import NVDIMM, LatencyModel
from ..nvm.stats import NVMStats
from ..sim.events import EventSimulator
from ..sim.resources import BandwidthResource, FIFOServer, ServerSnapshot
from .clock import ClockSnapshot, SimClock
from .records import TxRecord
from .registry import make_engine


class SharedResources:
    """The contended servers of one simulated machine.

    Every byte any client moves passes through ``bandwidth``; every log
    entry any engine allocates passes through ``log_mgmt``.  Additional
    servers (replication nodes) register themselves so the uniform
    ``reset()`` / ``snapshot()`` contract covers them too.
    """

    def __init__(self, model: LatencyModel):
        self.model = model
        self.bandwidth = BandwidthResource(model.bandwidth_gbps)
        self.log_mgmt = FIFOServer("log-mgmt")
        self._extra: List[FIFOServer] = []

    def register(self, server: FIFOServer) -> FIFOServer:
        """Track an additional server under the reset/snapshot contract."""
        self._extra.append(server)
        return server

    def servers(self) -> Iterator[FIFOServer]:
        yield self.bandwidth
        yield self.log_mgmt
        yield from self._extra

    def reset(self) -> None:
        for server in self.servers():
            server.reset()

    def snapshot(self) -> Dict[str, ServerSnapshot]:
        return {server.name: server.snapshot() for server in self.servers()}


@dataclass(frozen=True)
class ContextSnapshot:
    """Immutable view of every accounting surface of one context."""

    clock: ClockSnapshot
    stats: Optional[NVMStats]
    servers: Dict[str, ServerSnapshot]


class ExecutionContext:
    """One simulated machine: device + model + clock + shared servers.

    Construct directly for a bare context (replication clusters that
    bring their own storage), via :meth:`attach` to wrap an existing
    device/engine pair, or via :meth:`create` to build the full
    device → pool → heap → KV stack for a named engine.
    """

    def __init__(
        self,
        model: LatencyModel = NVDIMM,
        device: Optional[NVMDevice] = None,
        engine=None,
        heap=None,
        kv=None,
        clock: Optional[SimClock] = None,
        events: Optional[EventSimulator] = None,
        resources: Optional[SharedResources] = None,
        engine_name: Optional[str] = None,
        seed: int = 0,
    ):
        self.model = model
        self.device = device
        self.engine = engine
        self.heap = heap
        self.kv = kv
        self.clock = clock if clock is not None else SimClock()
        self.events = events if events is not None else EventSimulator(clock=self.clock)
        self.resources = resources if resources is not None else SharedResources(model)
        self.engine_name = engine_name or (getattr(engine, "name", None) if engine else None)
        #: the context's seed and RNG: every non-deterministic choice a
        #: simulation layer makes (fault injection above all) draws from
        #: here, so a run is exactly replayable from ``seed``
        self.seed = seed
        self.rng = random.Random(seed)
        #: records of every transaction executed through :meth:`run_tx`
        self.records: List[TxRecord] = []

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls,
        engine_name: str,
        value_size: int = 1024,
        heap_mb: int = 48,
        model: LatencyModel = NVDIMM,
        fanout: int = 32,
        seed: int = 0,
        coalesce_flushes: bool = False,
        resources: Optional[SharedResources] = None,
        device_cls: Optional[type] = None,
        backend: Optional[str] = None,
        lock_mode: str = "locked",
        **engine_kwargs,
    ) -> "ExecutionContext":
        """Build the full stack for ``engine_name``.

        The pool is sized for the worst-case engine footprint (full
        mirror + logs), so every engine sees an identically sized heap.

        ``device_cls`` pins an explicit device implementation (the
        wall-clock harness passes :class:`~repro.nvm.reference.
        ReferenceNVMDevice` for its naive baseline); otherwise
        ``backend`` (``"pure"`` / ``"numpy"`` / ``None`` for
        auto-detect) selects one via :func:`repro.nvm.backend.
        device_class`.  ``lock_mode="uncontended"`` elides the device
        mutex for single-threaded drivers.  None of these change any
        simulated result.
        """
        from ..heap import PersistentHeap
        from ..kvstore import KVStore
        from ..nvm.backend import device_class
        from ..nvm.pool import PmemPool

        if device_cls is None:
            device_cls = device_class(backend)
        heap_bytes = heap_mb << 20
        pool_bytes = heap_bytes * 2 + (32 << 20)
        device = device_cls(
            pool_bytes,
            model=model,
            seed=seed,
            coalesce_flushes=coalesce_flushes,
            lock_mode=lock_mode,
        )
        pool = PmemPool.create(device)
        engine = make_engine(engine_name, **engine_kwargs)
        heap = PersistentHeap.create(pool, engine, heap_size=heap_bytes)
        if lock_mode == "uncontended" and hasattr(engine, "set_lock_mode"):
            # single-threaded driver: elide the engine-side thread
            # synchronisation too (lock table + log slot pool)
            engine.set_lock_mode(lock_mode)
        kv = KVStore.create(heap, value_size=value_size, fanout=fanout)
        return cls(
            model=model,
            device=device,
            engine=engine,
            heap=heap,
            kv=kv,
            resources=resources,
            engine_name=engine_name,
        )

    @classmethod
    def attach(
        cls,
        device: NVMDevice,
        engine,
        model: Optional[LatencyModel] = None,
        resources: Optional[SharedResources] = None,
        heap=None,
        kv=None,
    ) -> "ExecutionContext":
        """Wrap an already-built device/engine pair in a context."""
        return cls(
            model=model or device.model,
            device=device,
            engine=engine,
            heap=heap,
            kv=kv,
            resources=resources,
        )

    # -- accounting surfaces -------------------------------------------------

    @property
    def stats(self) -> Optional[NVMStats]:
        return self.device.stats if self.device is not None else None

    def simulated_ns(self, delta: NVMStats) -> float:
        """Convert a stats delta into nanoseconds under this model."""
        return delta.simulated_ns(self.model)

    # -- inline transaction execution ----------------------------------------

    def run_tx(self, kind: str, fn: Callable[[], None], charge: bool = True) -> TxRecord:
        """Execute one operation (one transaction) and record its costs.

        The device's counters are snapshotted around the functional
        execution and around the engine's deferred-work drain; the deltas
        price the critical path and the asynchronous backup sync.  With
        ``charge`` (single-client accounting) the context's clock advances
        by the critical-path cost at this moment — inline, not in a later
        replay pass.  The multi-client scheduler passes ``charge=False``
        and threads the record through the shared servers itself, which
        is the same inline moment seen from a contended machine.
        """
        if self.device is None or self.engine is None:
            raise ValueError("run_tx requires a context with a device and an engine")
        captured: Dict[str, object] = {}

        def hook(tx) -> None:
            captured["write"] = frozenset(tx.write_set)
            captured["read"] = frozenset(tx.read_set)
            captured["intents"] = len(tx.intents)

        stats = self.device.stats
        self.engine.trace_hook = hook
        try:
            s0 = stats.snapshot()
            fn()
            s1 = stats.snapshot()
            # drain exactly this operation's deferred work
            self.engine.sync_pending()
            s2 = stats.snapshot()
        finally:
            self.engine.trace_hook = None
        crit = s1.delta(s0)
        deferred = s2.delta(s1)
        record = TxRecord(
            kind=kind,
            crit_ns=crit.simulated_ns(self.model),
            async_ns=deferred.simulated_ns(self.model),
            crit_bytes=crit.total_bytes,
            async_bytes=deferred.total_bytes,
            crit_copy_bytes=crit.copy_bytes,
            n_intents=int(captured.get("intents", 0)),
            write_set=captured.get("write", frozenset()),
            read_set=captured.get("read", frozenset()),
        )
        if charge:
            self.clock.advance(record.crit_ns)
        self.records.append(record)
        return record

    def run_ops(
        self,
        ops,
        executor: Callable[[object], None],
        kind_of: Callable[[object], str] = lambda op: getattr(op, "kind", "op"),
        charge: bool = True,
    ) -> List[TxRecord]:
        """Trace a whole operation stream through :meth:`run_tx`."""
        for op in ops:
            self.run_tx(kind_of(op), lambda: executor(op), charge=charge)
        return self.records

    # -- uniform reset/snapshot contract -------------------------------------

    def reset(self) -> None:
        """Zero every accounting surface (between benchmark runs).

        Durable state (heap contents) is untouched; only counters, the
        clock, the shared servers, and collected records are cleared, so
        back-to-back engine runs cannot leak cost into each other.
        """
        if self.device is not None:
            self.device.stats.reset()
        self.resources.reset()
        self.clock.reset()
        self.records.clear()

    def snapshot(self) -> ContextSnapshot:
        """Immutable view of every accounting surface, for leak checks."""
        return ContextSnapshot(
            clock=self.clock.snapshot(),
            stats=self.device.stats.snapshot() if self.device is not None else None,
            servers=self.resources.snapshot(),
        )
