"""Decorator-based engine registry with declared capabilities.

The paper's methodology depends on every atomicity scheme being a
drop-in behind one hook surface (:class:`~repro.tx.base.AtomicityEngine`).
The registry is the runtime-facing half of that contract: an engine
module declares itself with::

    @register_engine("kamino-simple", capabilities=EngineCapabilities(
        copies_in_critical_path=False,
        has_backup=True,
        locks_released_after_sync=True,
        cost_profile="kamino",
    ))
    def kamino_simple(**kwargs) -> KaminoEngine: ...

and every consumer — ``make_engine``, the CLI's engine-kwargs parsing,
the scheduler's contention model
(:func:`repro.sim.resources.cost_model_for`), and the property-based
crash suites — reads the registry instead of a hard-coded table.  Adding
an engine or a backend therefore touches exactly one file: the engine's
own module.

Names are resolved by exact match first, then by longest registered
prefix, because engines may decorate their runtime name with parameters
(``kamino_dynamic(alpha=0.3).name == "kamino-dynamic-30"``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "EngineCapabilities",
    "EngineInfo",
    "engine_info",
    "find_registered",
    "make_engine",
    "register_engine",
    "registered_engines",
    "registry_snapshot",
    "unregister_engine",
]


@dataclass(frozen=True)
class EngineCapabilities:
    """What the runtime may assume about a registered engine.

    Attributes:
        description: one-line summary shown by ``repro engines``.
        copies_in_critical_path: the scheme moves data bytes before its
            commit point (undo's log capture, CoW's shadow copies).
        has_backup: maintains a backup region the recovery protocol must
            re-synchronise (the Kamino family).
        recoverable: can restore a consistent heap on its own after a
            crash, so it participates in standalone crash-injection
            sweeps; False for deliberately unsafe baselines (``nolog``)
            and for engines whose repair needs outside help.
        needs_chain_repair: recovery only *identifies* incomplete work;
            repairing it requires a chain neighbour (§5.3's in-place
            replica engine).  The crash checker sweeps these engines
            through the replication-chain explorer instead of the
            standalone heap explorer.
        locks_released_after_sync: write locks are held past commit until
            the asynchronous backup sync lands, so dependent transactions
            wait longer (paper §7.1).
        cost_profile: key into
            :data:`repro.sim.resources.ENGINE_COST_MODELS` selecting the
            calibrated serialized-software contention model.
        options: tunable constructor kwargs exposed as CLI flags
            (e.g. ``("alpha",)`` for the dynamic backup).
    """

    description: str = ""
    copies_in_critical_path: bool = True
    has_backup: bool = False
    recoverable: bool = True
    needs_chain_repair: bool = False
    locks_released_after_sync: bool = False
    cost_profile: str = "default"
    options: Tuple[str, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class EngineInfo:
    """One registry row: the factory plus its declared capabilities."""

    name: str
    factory: Callable[..., object]
    capabilities: EngineCapabilities


_REGISTRY: Dict[str, EngineInfo] = {}
_BUILTINS_LOADED = False
_EXTRAS_LOADED = False


def _ensure_builtins_loaded() -> None:
    """Import the engine-defining modules so they self-register.

    The flag is set *before* the import: ``repro.tx`` itself imports this
    module (for the decorator), and re-entering here mid-import would
    recurse.  The replication package's in-place engine lives outside
    ``repro.tx`` and its import chain needs a fully initialised
    :mod:`repro.heap`; during the bootstrap import (heap → tx → registry)
    the heap is mid-import, so its registration is deferred to the next
    registry query after start-up.
    """
    global _BUILTINS_LOADED, _EXTRAS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        import repro.tx  # noqa: F401  (side effect: engine registration)
    if not _EXTRAS_LOADED:
        import sys

        heap_mod = sys.modules.get("repro.heap")
        if heap_mod is None or hasattr(heap_mod, "PersistentHeap"):
            _EXTRAS_LOADED = True
            import repro.replication.inplace_engine  # noqa: F401  (intent-only)


def register_engine(
    name: str, *, capabilities: Optional[EngineCapabilities] = None
) -> Callable:
    """Class/function decorator adding an engine factory to the registry."""

    caps = capabilities if capabilities is not None else EngineCapabilities()

    def decorator(factory: Callable) -> Callable:
        _REGISTRY[name] = EngineInfo(name=name, factory=factory, capabilities=caps)
        return factory

    return decorator


def unregister_engine(name: str) -> None:
    """Remove a registration (tests registering throwaway engines)."""
    _REGISTRY.pop(name, None)


@contextmanager
def registry_snapshot():
    """Restore the registry to its entry state on exit.

    Guards registry-mutating code (tests that ``register_engine`` a
    throwaway double, or ``unregister_engine`` a builtin) so later
    registry-driven consumers see the pristine table.  The builtins —
    including the deferred replication extra — are force-loaded *before*
    the snapshot: the loader's once-only flags stay set, so an early
    (pre-extra) snapshot would otherwise permanently erase the deferred
    registration when restored.
    """
    _ensure_builtins_loaded()
    saved = dict(_REGISTRY)
    try:
        yield
    finally:
        _REGISTRY.clear()
        _REGISTRY.update(saved)


def registered_engines() -> Dict[str, EngineInfo]:
    """All registered engines, sorted by name."""
    _ensure_builtins_loaded()
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


def find_registered(name: str) -> Optional[EngineInfo]:
    """Resolve ``name`` to a registration, or ``None``.

    Exact match wins; otherwise the longest registered name that is a
    prefix of ``name`` (runtime names like ``kamino-dynamic-30``).
    """
    _ensure_builtins_loaded()
    info = _REGISTRY.get(name)
    if info is not None:
        return info
    best: Optional[EngineInfo] = None
    for key, candidate in _REGISTRY.items():
        if name.startswith(key) and (best is None or len(key) > len(best.name)):
            best = candidate
    return best


def engine_info(name: str) -> EngineInfo:
    """Like :func:`find_registered` but raising on unknown names."""
    info = find_registered(name)
    if info is None:
        raise ValueError(
            f"unknown engine '{name}'; choose from {sorted(registered_engines())}"
        )
    return info


def make_engine(name: str, **kwargs):
    """Build an engine by its registered name (TX factory entry point)."""
    _ensure_builtins_loaded()
    try:
        info = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine '{name}'; choose from {sorted(_REGISTRY)}"
        ) from None
    return info.factory(**kwargs)
