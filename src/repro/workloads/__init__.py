"""Workload generators: YCSB A–F, TPC-C-lite, and §7.1 synthetics."""

from .keydist import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv1a_64,
    hash_point,
    key_point,
    make_generator,
)
from .synthetic import DependentTxWorkload, WorstCaseWorkload
from .tpcc import MIX, TPCCLite, TPCCStats
from .ycsb import INSERT, MIXES, READ, RMW, SCAN, UPDATE, Op, YCSBWorkload, all_workloads

__all__ = [
    "DependentTxWorkload",
    "INSERT",
    "LatestGenerator",
    "MIX",
    "MIXES",
    "Op",
    "READ",
    "RMW",
    "SCAN",
    "ScrambledZipfianGenerator",
    "TPCCLite",
    "TPCCStats",
    "UPDATE",
    "UniformGenerator",
    "WorstCaseWorkload",
    "YCSBWorkload",
    "ZipfianGenerator",
    "all_workloads",
    "fnv1a_64",
    "hash_point",
    "key_point",
    "make_generator",
]
