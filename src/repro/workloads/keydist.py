"""Key-distribution generators used by the YCSB driver.

Implements the three request distributions YCSB's core workloads need:

* **uniform** — every record equally likely;
* **zipfian** — Gray et al.'s rejection-free zipfian generator (the same
  algorithm YCSB uses), plus the *scrambled* variant that hashes ranks so
  hot keys are spread across the key space rather than clustered at 0;
* **latest** — zipfian over recency, favouring recently inserted records
  (workload D's read distribution).
"""

from __future__ import annotations

import random
from typing import Optional

ZIPFIAN_CONSTANT = 0.99

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """FNV-1a over the 8 little-endian bytes of ``value`` (YCSB's hash)."""
    h = _FNV_OFFSET
    for _ in range(8):
        h ^= value & 0xFF
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return h


_GOLDEN_64 = 0x9E3779B97F4A7C15  # 2^64 / phi: the classic odd mixer


def key_point(key: int) -> int:
    """A key's position on the 64-bit consistent-hash circle.

    Plain :func:`fnv1a_64` of the key: uniform over the circle even for
    the dense small-integer keyspaces the workloads use.
    """
    return fnv1a_64(key & 0xFFFFFFFFFFFFFFFF)


def hash_point(shard_id: int, replica: int) -> int:
    """Ring position of one of a shard's virtual nodes.

    Double-hashed so neighbouring ``(shard_id, replica)`` pairs land far
    apart: the shard id is spread by a golden-ratio multiply before the
    replica index perturbs it, and FNV-1a scatters the result.  Distinct
    inputs give distinct points with overwhelming probability, keeping
    the ring's arc lengths — and therefore shard load — balanced.
    """
    mixed = ((shard_id + 1) * _GOLDEN_64) & 0xFFFFFFFFFFFFFFFF
    return fnv1a_64(mixed ^ (replica * _FNV_PRIME & 0xFFFFFFFFFFFFFFFF))


class UniformGenerator:
    """Uniform integers in [0, nitems)."""

    def __init__(self, nitems: int, seed: Optional[int] = None):
        if nitems <= 0:
            raise ValueError("nitems must be positive")
        self.nitems = nitems
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randrange(self.nitems)


class ZipfianGenerator:
    """Gray et al. "Quickly generating billion-record synthetic databases".

    Draws ranks in [0, nitems) with P(rank) ∝ 1/rank^θ.  ``zeta`` is
    computed once per item count (O(n) at construction, O(1) per draw).
    """

    def __init__(self, nitems: int, theta: float = ZIPFIAN_CONSTANT, seed: Optional[int] = None):
        if nitems <= 0:
            raise ValueError("nitems must be positive")
        self.nitems = nitems
        self.theta = theta
        self._rng = random.Random(seed)
        self._zetan = self._zeta(nitems, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / nitems) ** (1 - theta)) / (1 - self._zeta2 / self._zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.nitems * ((self._eta * u - self._eta + 1) ** self._alpha))


class ScrambledZipfianGenerator:
    """Zipfian ranks scattered over the key space by FNV hashing.

    This is what YCSB actually uses: the *popularity* distribution is
    zipfian but the popular keys are spread out, so hot keys do not share
    B+Tree leaves — important for a fair dependent-transaction rate.
    """

    def __init__(self, nitems: int, seed: Optional[int] = None):
        self.nitems = nitems
        self._zipf = ZipfianGenerator(nitems, seed=seed)

    def next(self) -> int:
        return fnv1a_64(self._zipf.next()) % self.nitems


class LatestGenerator:
    """Zipfian over recency: the most recent insert is the hottest.

    ``max_key`` grows as the workload inserts records (workload D).
    """

    def __init__(self, nitems: int, seed: Optional[int] = None):
        self.nitems = nitems
        self._zipf = ZipfianGenerator(nitems, seed=seed)

    def advance(self) -> None:
        """Record that a new item was inserted (shifts the hot spot)."""
        self.nitems += 1
        # re-deriving zeta incrementally: zeta(n+1) = zeta(n) + 1/(n+1)^θ
        z = self._zipf
        z._zetan += 1.0 / ((self.nitems) ** z.theta)
        z.nitems = self.nitems
        z._eta = (1 - (2.0 / z.nitems) ** (1 - z.theta)) / (1 - z._zeta2 / z._zetan)

    def next(self) -> int:
        return self.nitems - 1 - self._zipf.next()


def make_generator(name: str, nitems: int, seed: Optional[int] = None):
    """Factory: 'uniform' | 'zipfian' | 'scrambled' | 'latest'."""
    if name == "uniform":
        return UniformGenerator(nitems, seed)
    if name == "zipfian":
        return ZipfianGenerator(nitems, seed=seed)
    if name == "scrambled":
        return ScrambledZipfianGenerator(nitems, seed)
    if name == "latest":
        return LatestGenerator(nitems, seed)
    raise ValueError(f"unknown distribution '{name}'")
