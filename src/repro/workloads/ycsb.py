"""YCSB core workloads A-F (paper Table 3, plus scan-heavy E).

=========  =====  =======  ======  ==============  =====
Workload    Read   Update  Insert  Read-&-Update    Scan
=========  =====  =======  ======  ==============  =====
A            50%      50%       —            —         —
B            95%       5%       —            —         —
C           100%        —       —            —         —
D            95%        —      5%            —         —
E              —        —      5%            —       95%
F            50%        —       —           50%        —
=========  =====  =======  ======  ==============  =====

Keys follow YCSB's scrambled-zipfian request distribution (D uses
"latest").  The driver emits a deterministic operation trace; executing
an operation against a :class:`~repro.kvstore.kv.KVStore` maps directly
onto get / put / read-modify-write, each of which is one transaction —
the unit the paper's throughput and latency figures count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..kvstore.kv import KVStore
from .keydist import LatestGenerator, ScrambledZipfianGenerator, UniformGenerator

#: (read %, update %, insert %, rmw %, scan %) per workload.  A-F follow
#: the paper's Table 3; E is YCSB's scan-heavy core workload, included
#: as an extension (the paper omits it) because it exercises the
#: B+Tree's leaf chain.
MIXES: Dict[str, tuple] = {
    "A": (0.50, 0.50, 0.00, 0.00, 0.00),
    "B": (0.95, 0.05, 0.00, 0.00, 0.00),
    "C": (1.00, 0.00, 0.00, 0.00, 0.00),
    "D": (0.95, 0.00, 0.05, 0.00, 0.00),
    "E": (0.00, 0.00, 0.05, 0.00, 0.95),
    "F": (0.50, 0.00, 0.00, 0.50, 0.00),
}

READ = "read"
UPDATE = "update"
INSERT = "insert"
RMW = "rmw"
SCAN = "scan"

#: maximum records returned by one YCSB-E scan
SCAN_LENGTH = 20


@dataclass(frozen=True)
class Op:
    """One workload operation: kind + key (+ payload for writes)."""

    kind: str
    key: int
    value: Optional[bytes] = None


class YCSBWorkload:
    """Deterministic YCSB trace generator.

    Args:
        name: workload letter, one of A-F.
        nrecords: records loaded before the run (the paper uses 10 M;
            scale down for simulation).
        value_size: record payload bytes (1 KB in the paper).
        seed: trace seed; identical seeds give identical traces, so every
            engine sees byte-identical operations.
    """

    def __init__(self, name: str, nrecords: int, value_size: int = 1024, seed: int = 0):
        name = name.upper()
        if name not in MIXES:
            raise ValueError(f"unknown YCSB workload '{name}'; pick from {sorted(MIXES)}")
        self.name = name
        self.nrecords = nrecords
        self.value_size = value_size
        self.seed = seed
        self._rng = random.Random(seed)
        self._next_insert_key = nrecords
        if name == "D":
            self._keys = LatestGenerator(nrecords, seed=seed + 1)
        else:
            self._keys = ScrambledZipfianGenerator(nrecords, seed=seed + 1)
        self._scan_rng = random.Random(seed + 2)

    # -- trace generation ------------------------------------------------------

    def _value(self, key: int) -> bytes:
        """A deterministic, key-dependent record payload."""
        pattern = (key * 2654435761 + self._rng.randrange(256)) & 0xFF
        return bytes([pattern]) * min(64, self.value_size)

    def load_ops(self) -> Iterator[Op]:
        """The initial load phase: one insert per record."""
        for key in range(self.nrecords):
            yield Op(INSERT, key, self._value(key))

    def run_ops(self, nops: int) -> Iterator[Op]:
        """The measured phase: ``nops`` operations in the Table 3 mix."""
        read_p, update_p, insert_p, rmw_p, scan_p = MIXES[self.name]
        for _ in range(nops):
            r = self._rng.random()
            if r < read_p:
                yield Op(READ, self._existing_key())
            elif r < read_p + update_p:
                key = self._existing_key()
                yield Op(UPDATE, key, self._value(key))
            elif r < read_p + update_p + insert_p:
                key = self._next_insert_key
                self._next_insert_key += 1
                if isinstance(self._keys, LatestGenerator):
                    self._keys.advance()
                yield Op(INSERT, key, self._value(key))
            elif r < read_p + update_p + insert_p + rmw_p:
                key = self._existing_key()
                yield Op(RMW, key, self._value(key))
            else:
                yield Op(SCAN, self._existing_key())

    def _existing_key(self) -> int:
        return self._keys.next()

    # -- execution ----------------------------------------------------------------

    @staticmethod
    def execute(kv: KVStore, op: Op) -> Optional[bytes]:
        """Apply one operation to the store (one transaction)."""
        if op.kind == READ:
            return kv.get(op.key)
        if op.kind == UPDATE or op.kind == INSERT:
            kv.put(op.key, op.value)
            return None
        if op.kind == RMW:
            kv.read_modify_write(op.key, lambda _old: op.value)
            return None
        if op.kind == SCAN:
            kv.scan(op.key, SCAN_LENGTH)
            return None
        raise ValueError(f"unknown op kind {op.kind}")

    def load(self, kv: KVStore) -> None:
        """Run the full load phase against ``kv``."""
        for op in self.load_ops():
            kv.put(op.key, op.value)
        kv.drain()

    @property
    def write_fraction(self) -> float:
        read_p, update_p, insert_p, rmw_p, _scan_p = MIXES[self.name]
        return update_p + insert_p + rmw_p


def all_workloads() -> List[str]:
    return sorted(MIXES)
