"""TPC-C-lite: a scaled-down TPC-C over the persistent KV store.

The paper's Figure 1 and Figure 13 include TPC-C bars; this module
reimplements the benchmark's five transaction profiles with the standard
45/43/4/4/4 mix (new-order / payment / order-status / delivery /
stock-level) against the same KV substrate the YCSB driver uses.  Rows
are fixed-layout structs keyed by composite 64-bit keys, and every
transaction profile runs inside ONE heap transaction, so a new-order
touching a district row, 5–15 stock rows, and inserting an order with
its order lines is exactly the multi-object atomic update Kamino-Tx is
designed for.

Scaled defaults (full TPC-C in parentheses): 2 warehouses, 4 districts
per warehouse (10), 30 customers per district (3 000), 100 items
(100 000).  The *shape* of each transaction's read/write set is
preserved; only the cardinalities shrink.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..kvstore.kv import KVStore

# table ids for composite keys: [table:8][w:8][d:8][rest:40]
_T_WAREHOUSE = 1
_T_DISTRICT = 2
_T_CUSTOMER = 3
_T_ORDER = 4
_T_NEW_ORDER = 5
_T_ORDER_LINE = 6
_T_ITEM = 7
_T_STOCK = 8

NEW_ORDER = "new_order"
PAYMENT = "payment"
ORDER_STATUS = "order_status"
DELIVERY = "delivery"
STOCK_LEVEL = "stock_level"

#: the standard TPC-C transaction mix
MIX = [
    (NEW_ORDER, 0.45),
    (PAYMENT, 0.43),
    (ORDER_STATUS, 0.04),
    (DELIVERY, 0.04),
    (STOCK_LEVEL, 0.04),
]

STOCK_THRESHOLD = 15
ROW_SIZE = 64  # KV record capacity for the largest row


def _key(table: int, w: int = 0, d: int = 0, rest: int = 0) -> int:
    if rest >= 1 << 40:
        raise ValueError("composite key overflow")
    return (table << 56) | (w << 48) | (d << 40) | rest


def k_warehouse(w: int) -> int:
    return _key(_T_WAREHOUSE, w)


def k_district(w: int, d: int) -> int:
    return _key(_T_DISTRICT, w, d)


def k_customer(w: int, d: int, c: int) -> int:
    return _key(_T_CUSTOMER, w, d, c)


def k_order(w: int, d: int, o: int) -> int:
    return _key(_T_ORDER, w, d, o)


def k_new_order(w: int, d: int, o: int) -> int:
    return _key(_T_NEW_ORDER, w, d, o)


def k_order_line(w: int, d: int, o: int, line: int) -> int:
    return _key(_T_ORDER_LINE, w, d, (o << 8) | line)


def k_item(i: int) -> int:
    return _key(_T_ITEM, 0, 0, i)


def k_stock(w: int, i: int) -> int:
    return _key(_T_STOCK, w, 0, i)


# -- row codecs (fixed struct layouts, zero-padded to ROW_SIZE) --------------

_WAREHOUSE = struct.Struct("<d")  # ytd
_DISTRICT = struct.Struct("<Id")  # next_o_id, ytd
_CUSTOMER = struct.Struct("<ddIII")  # balance, ytd_payment, payments, deliveries, last_o
_ORDER = struct.Struct("<IIII")  # c_id, ol_cnt, carrier_id, all_delivered
_ORDER_LINE = struct.Struct("<IIdI")  # item, qty, amount, delivered
_ITEM = struct.Struct("<d")  # price
_STOCK = struct.Struct("<III")  # quantity, ytd, order_cnt


def _pack(codec: struct.Struct, *vals) -> bytes:
    return codec.pack(*vals)


def _unpack(codec: struct.Struct, row: bytes) -> tuple:
    return codec.unpack(row[: codec.size])


@dataclass
class TPCCStats:
    """Per-profile commit counters (the benchmark reports tpmC-style)."""

    new_orders: int = 0
    payments: int = 0
    order_statuses: int = 0
    deliveries: int = 0
    stock_levels: int = 0

    @property
    def total(self) -> int:
        return (
            self.new_orders
            + self.payments
            + self.order_statuses
            + self.deliveries
            + self.stock_levels
        )


class TPCCLite:
    """Generator + executor for the scaled TPC-C workload."""

    def __init__(
        self,
        warehouses: int = 2,
        districts: int = 4,
        customers: int = 30,
        items: int = 100,
        seed: int = 0,
    ):
        self.warehouses = warehouses
        self.districts = districts
        self.customers = customers
        self.items = items
        self._rng = random.Random(seed)
        self.stats = TPCCStats()

    # -- load phase -----------------------------------------------------------

    def load(self, kv: KVStore) -> None:
        """Populate warehouses, districts, customers, items, and stock."""
        if kv.value_size < ROW_SIZE:
            raise ValueError(f"TPC-C needs value_size >= {ROW_SIZE}")
        for i in range(self.items):
            kv.put(k_item(i), _pack(_ITEM, 1.0 + (i % 100)))
        for w in range(self.warehouses):
            kv.put(k_warehouse(w), _pack(_WAREHOUSE, 0.0))
            for i in range(self.items):
                kv.put(k_stock(w, i), _pack(_STOCK, 50 + (i % 50), 0, 0))
            for d in range(self.districts):
                kv.put(k_district(w, d), _pack(_DISTRICT, 1, 0.0))
                for c in range(self.customers):
                    kv.put(k_customer(w, d, c), _pack(_CUSTOMER, 0.0, 0.0, 0, 0, 0))
        kv.drain()

    # -- transaction profiles -----------------------------------------------------

    def _pick_wdc(self) -> Tuple[int, int, int]:
        return (
            self._rng.randrange(self.warehouses),
            self._rng.randrange(self.districts),
            self._rng.randrange(self.customers),
        )

    def do_new_order(self, kv: KVStore) -> int:
        """45%: insert an order of 5–15 lines, updating stock rows."""
        w, d, c = self._pick_wdc()
        ol_cnt = self._rng.randint(5, 15)
        lines = [
            (self._rng.randrange(self.items), self._rng.randint(1, 10))
            for _ in range(ol_cnt)
        ]
        with kv.heap.transaction():
            next_o, ytd = _unpack(_DISTRICT, kv.get(k_district(w, d)))
            kv.put(k_district(w, d), _pack(_DISTRICT, next_o + 1, ytd))
            total = 0.0
            for ln, (item, qty) in enumerate(lines):
                (price,) = _unpack(_ITEM, kv.get(k_item(item)))
                s_qty, s_ytd, s_cnt = _unpack(_STOCK, kv.get(k_stock(w, item)))
                new_qty = s_qty - qty if s_qty - qty >= 10 else s_qty - qty + 91
                kv.put(k_stock(w, item), _pack(_STOCK, new_qty, s_ytd + qty, s_cnt + 1))
                amount = qty * price
                total += amount
                kv.put(
                    k_order_line(w, d, next_o, ln),
                    _pack(_ORDER_LINE, item, qty, amount, 0),
                )
            kv.put(k_order(w, d, next_o), _pack(_ORDER, c, ol_cnt, 0, 0))
            kv.put(k_new_order(w, d, next_o), _pack(_ORDER, c, ol_cnt, 0, 0))
            bal, ytd_p, pays, dels, _last = _unpack(_CUSTOMER, kv.get(k_customer(w, d, c)))
            kv.put(
                k_customer(w, d, c), _pack(_CUSTOMER, bal - total, ytd_p, pays, dels, next_o)
            )
        self.stats.new_orders += 1
        return next_o

    def do_payment(self, kv: KVStore) -> None:
        """43%: add a payment to warehouse, district, and customer."""
        w, d, c = self._pick_wdc()
        amount = self._rng.uniform(1.0, 5000.0)
        with kv.heap.transaction():
            (w_ytd,) = _unpack(_WAREHOUSE, kv.get(k_warehouse(w)))
            kv.put(k_warehouse(w), _pack(_WAREHOUSE, w_ytd + amount))
            next_o, d_ytd = _unpack(_DISTRICT, kv.get(k_district(w, d)))
            kv.put(k_district(w, d), _pack(_DISTRICT, next_o, d_ytd + amount))
            bal, ytd_p, pays, dels, last = _unpack(_CUSTOMER, kv.get(k_customer(w, d, c)))
            kv.put(
                k_customer(w, d, c),
                _pack(_CUSTOMER, bal - amount, ytd_p + amount, pays + 1, dels, last),
            )
        self.stats.payments += 1

    def do_order_status(self, kv: KVStore) -> Optional[tuple]:
        """4%: read a customer's balance and their last order's lines."""
        w, d, c = self._pick_wdc()
        with kv.heap.transaction():
            bal, _ytd, _p, _dl, last = _unpack(_CUSTOMER, kv.get(k_customer(w, d, c)))
            if last == 0:
                self.stats.order_statuses += 1
                return None
            order_row = kv.get(k_order(w, d, last))
            if order_row is None:
                self.stats.order_statuses += 1
                return None
            _c, ol_cnt, carrier, _ad = _unpack(_ORDER, order_row)
            lines = []
            for ln in range(ol_cnt):
                row = kv.get(k_order_line(w, d, last, ln))
                if row is not None:
                    lines.append(_unpack(_ORDER_LINE, row))
        self.stats.order_statuses += 1
        return bal, carrier, lines

    def do_delivery(self, kv: KVStore) -> int:
        """4%: deliver the oldest undelivered order of each district."""
        w = self._rng.randrange(self.warehouses)
        carrier = self._rng.randint(1, 10)
        delivered = 0
        with kv.heap.transaction():
            for d in range(self.districts):
                base = k_new_order(w, d, 0)
                hits = kv.tree.scan(base, 1)
                if not hits or hits[0][0] >= k_new_order(w, d + 1, 0) or hits[0][0] < base:
                    continue
                o = hits[0][0] & ((1 << 40) - 1)
                kv.delete(k_new_order(w, d, o))
                row = kv.get(k_order(w, d, o))
                c, ol_cnt, _carrier, _ad = _unpack(_ORDER, row)
                kv.put(k_order(w, d, o), _pack(_ORDER, c, ol_cnt, carrier, 1))
                total = 0.0
                for ln in range(ol_cnt):
                    item, qty, amount, _dl = _unpack(
                        _ORDER_LINE, kv.get(k_order_line(w, d, o, ln))
                    )
                    kv.put(k_order_line(w, d, o, ln), _pack(_ORDER_LINE, item, qty, amount, 1))
                    total += amount
                bal, ytd_p, pays, dels, last = _unpack(
                    _CUSTOMER, kv.get(k_customer(w, d, c))
                )
                kv.put(
                    k_customer(w, d, c),
                    _pack(_CUSTOMER, bal + total, ytd_p, pays, dels + 1, last),
                )
                delivered += 1
        self.stats.deliveries += 1
        return delivered

    def do_stock_level(self, kv: KVStore) -> int:
        """4%: count low-stock items over the district's recent orders."""
        w = self._rng.randrange(self.warehouses)
        d = self._rng.randrange(self.districts)
        low = 0
        with kv.heap.transaction():
            next_o, _ytd = _unpack(_DISTRICT, kv.get(k_district(w, d)))
            seen = set()
            for o in range(max(1, next_o - 20), next_o):
                row = kv.get(k_order(w, d, o))
                if row is None:
                    continue
                _c, ol_cnt, _carrier, _ad = _unpack(_ORDER, row)
                for ln in range(ol_cnt):
                    lrow = kv.get(k_order_line(w, d, o, ln))
                    if lrow is None:
                        continue
                    item, _qty, _amount, _dl = _unpack(_ORDER_LINE, lrow)
                    if item in seen:
                        continue
                    seen.add(item)
                    s_qty, _sytd, _scnt = _unpack(_STOCK, kv.get(k_stock(w, item)))
                    if s_qty < STOCK_THRESHOLD:
                        low += 1
        self.stats.stock_levels += 1
        return low

    # -- driver ------------------------------------------------------------------------

    def run_op(self, kv: KVStore) -> str:
        """Execute one transaction drawn from the standard mix."""
        r = self._rng.random()
        acc = 0.0
        for name, frac in MIX:
            acc += frac
            if r < acc:
                getattr(self, f"do_{name}")(kv)
                return name
        self.do_stock_level(kv)  # pragma: no cover - float edge
        return STOCK_LEVEL

    def run(self, kv: KVStore, nops: int) -> TPCCStats:
        for _ in range(nops):
            self.run_op(kv)
        kv.drain()
        return self.stats
