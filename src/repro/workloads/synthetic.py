"""Synthetic workloads for the paper's targeted experiments (§7.1).

Two micro-workloads the evaluation text describes outside the figures:

* **Dependent-transaction workload** — 80% look-ups / 20% inserts where
  every insert hits the *same key*; the inserts are either spaced
  uniformly through the stream or issued back-to-back ("burst").  Burst
  spacing maximises the chance that a transaction arrives while its
  predecessor's backup sync is still pending — the case where Kamino-Tx
  pays and undo-logging does not.

* **Worst-case workload** — a single object updated continuously, with
  the object size swept from 64 B to 4 KiB: below ~1 KB Kamino wins by
  eliminating log allocation; at larger sizes both schemes are copy- or
  bandwidth-bound and converge.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from ..kvstore.kv import KVStore
from .ycsb import INSERT, READ, UPDATE, Op


class DependentTxWorkload:
    """80/20 lookup/insert stream with all inserts on one hot key.

    Args:
        nrecords: pre-loaded key space for the look-ups.
        spacing: "uniform" spreads the hot-key writes evenly; "burst"
            clumps them consecutively (maximally dependent).
        insert_fraction: hot-key write share (paper: 20%).
    """

    def __init__(
        self,
        nrecords: int,
        spacing: str = "uniform",
        insert_fraction: float = 0.2,
        value_size: int = 64,
        seed: int = 0,
    ):
        if spacing not in ("uniform", "burst"):
            raise ValueError("spacing must be 'uniform' or 'burst'")
        self.nrecords = nrecords
        self.spacing = spacing
        self.insert_fraction = insert_fraction
        self.value_size = value_size
        self.hot_key = nrecords  # a key outside the loaded range
        self._rng = random.Random(seed)

    def ops(self, nops: int) -> List[Op]:
        """The deterministic operation stream."""
        nwrites = int(nops * self.insert_fraction)
        nreads = nops - nwrites
        reads = [
            Op(READ, self._rng.randrange(self.nrecords)) for _ in range(nreads)
        ]
        writes = [
            Op(UPDATE, self.hot_key, bytes([i % 256]) * min(16, self.value_size))
            for i in range(nwrites)
        ]
        if self.spacing == "burst":
            # all hot-key writes back to back in the middle of the stream
            mid = nreads // 2
            return reads[:mid] + writes + reads[mid:]
        # uniform: one write every (nops/nwrites) operations
        out: List[Op] = []
        stride = max(1, nops // max(1, nwrites))
        w = iter(writes)
        for i, r in enumerate(reads):
            out.append(r)
            if (i + 1) % stride == 0:
                nxt = next(w, None)
                if nxt is not None:
                    out.append(nxt)
        out.extend(w)
        return out[:nops]

    def load(self, kv: KVStore) -> None:
        for key in range(self.nrecords):
            kv.put(key, b"\x01" * min(16, self.value_size))
        kv.put(self.hot_key, b"\x00" * min(16, self.value_size))
        kv.drain()


class WorstCaseWorkload:
    """Continuously update the same object(s); the paper's worst case.

    ``object_size`` is the payload each update rewrites (64–4096 B in
    §7.1); ``nobjects`` > 1 spreads updates round-robin over a few
    objects to emulate the multi-threaded variant where each thread owns
    one object.
    """

    SIZES = (64, 128, 256, 512, 1024, 2048, 4096)

    def __init__(self, object_size: int = 64, nobjects: int = 1, seed: int = 0):
        if object_size <= 0:
            raise ValueError("object_size must be positive")
        self.object_size = object_size
        self.nobjects = nobjects
        self._rng = random.Random(seed)

    def ops(self, nops: int) -> Iterator[Op]:
        payload_unit = min(64, self.object_size)
        for i in range(nops):
            key = i % self.nobjects
            yield Op(UPDATE, key, bytes([i % 256]) * payload_unit)

    def load(self, kv: KVStore) -> None:
        for key in range(self.nobjects):
            kv.put(key, b"\x00" * self.object_size)
        kv.drain()
