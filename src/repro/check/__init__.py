"""Systematic crash-consistency checking (library / pytest / CLI).

The checker makes the paper's central correctness claim — atomic
in-place updates survive a power failure at *any* instant, including
during recovery itself — mechanically testable:

* :class:`CrashExplorer` enumerates every mutating-device-op crash point
  of an instrumented workload on one engine, prunes states whose durable
  bytes + dirty-line overlay it has already seen, re-crashes inside
  recovery (nested crashes), and judges each recovered heap with
  semantic oracles (committed-transaction ledger, structure validators,
  backup agreement).
* :class:`ChainCrashExplorer` does the same for the replication chain's
  fail-stop and quick-reboot modes (§5.2–§5.3), where the in-place
  replica engine needs a neighbour to repair.
* :class:`ServeCrashExplorer` (re-exported from :mod:`repro.serve`)
  sweeps the serving layer's durable-procedure frame log: a crash at any
  frame-persist boundary — or nested inside the recovery — must lose no
  committed step and apply none twice.
* :func:`minimize_failure` / :func:`repro_snippet` shrink any failure to
  the earliest, simplest crash point and print a self-contained replay.

Entry points: ``repro check`` (CLI), the ``assert_engine_crash_consistent``
pytest fixture (:mod:`repro.check.pytest_plugin`), or the classes below.
See ``docs/CHECKING.md`` for the state-space model and oracle contract.
"""

from .chain import (
    COORDINATOR_CRASH,
    FAIL_STOP,
    QUICK_REBOOT,
    ChainCrashExplorer,
    ChainFailure,
    ChainReport,
    ChainScenario,
    MigrationCrashExplorer,
    MigrationScenario,
)
from .explorer import (
    CheckFailure,
    CrashExplorer,
    ExplorationReport,
    Scenario,
    replay_scenario,
    sweep_registry,
)
from .minimize import minimize_failure, repro_snippet
from .oracle import Ledger, OracleViolation, check_against_ledger
from ..serve.explorer import (
    ServeCrashExplorer,
    ServeFailure,
    ServeReport,
    ServeScenario,
)
from .workload import (
    CANNED_WORKLOADS,
    CheckWorkload,
    KVWorkload,
    ListWorkload,
    PairsWorkload,
    RingWorkload,
    build_stack,
)

__all__ = [
    "CANNED_WORKLOADS",
    "COORDINATOR_CRASH",
    "FAIL_STOP",
    "QUICK_REBOOT",
    "ChainCrashExplorer",
    "ChainFailure",
    "ChainReport",
    "ChainScenario",
    "CheckFailure",
    "CheckWorkload",
    "CrashExplorer",
    "ExplorationReport",
    "KVWorkload",
    "Ledger",
    "ListWorkload",
    "MigrationCrashExplorer",
    "MigrationScenario",
    "OracleViolation",
    "PairsWorkload",
    "RingWorkload",
    "Scenario",
    "ServeCrashExplorer",
    "ServeFailure",
    "ServeReport",
    "ServeScenario",
    "build_stack",
    "check_against_ledger",
    "minimize_failure",
    "replay_scenario",
    "repro_snippet",
    "sweep_registry",
]
