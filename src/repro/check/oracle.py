"""Semantic oracles: what a recovered heap is allowed to look like.

The checker's correctness contract is transaction-level atomicity +
durability, judged against a **committed-transaction ledger** recorded
from an uncrashed golden run of the same workload:

* ``S_0`` — the logical state right after setup;
* ``S_i`` — the state after the first ``i`` steps (each one transaction).

A crash that fires after ``k`` steps returned (i.e. committed — every
engine's commit is synchronous durability; only the *backup* sync is
asynchronous) happened during step ``k`` or during the trailing sync
drain.  The recovered state must then be exactly ``S_k`` (the in-flight
step rolled back or never reached its commit point) or ``S_{k+1}`` (it
committed before the power failed).  Anything else — a mix of the two, a
resurrected aborted write, a lost committed one — is an atomicity or
durability violation.

On top of the ledger check, each workload contributes *structure
validators* (B+Tree invariants, linked-list reachability, ring record
CRCs) that catch corruption invisible at the logical level, and
Kamino-family engines are additionally checked for main/backup agreement
once the sync queue drains (:func:`repro.tx.recovery.verify_backup_consistency`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional


@dataclass
class Ledger:
    """Logical states of the golden run: ``states[i]`` = after ``i`` steps."""

    workload: str
    states: List[Any] = field(default_factory=list)

    @property
    def n_steps(self) -> int:
        return len(self.states) - 1

    def expected_after(self, steps_completed: int) -> List[Any]:
        """The admissible recovered states after ``steps_completed``
        steps returned: the crash fired inside step ``steps_completed``
        (or after the last step, in the sync drain), so that step is
        either absent or fully present."""
        k = min(steps_completed, self.n_steps)
        expected = [self.states[k]]
        if k + 1 <= self.n_steps and k == steps_completed:
            expected.append(self.states[k + 1])
        return expected


@dataclass
class OracleViolation:
    """One oracle/validator verdict for a recovered state."""

    kind: str  # "atomicity" | "validator" | "recovery" | "backup"
    message: str
    steps_completed: int = 0
    observed: Any = None
    expected: Any = None

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message}"


def check_against_ledger(
    ledger: Ledger, observed: Any, steps_completed: int
) -> Optional[OracleViolation]:
    """Ledger (prefix) oracle: ``None`` when ``observed`` is admissible."""
    expected = ledger.expected_after(steps_completed)
    if any(observed == state for state in expected):
        return None
    labels = [f"S_{min(steps_completed, ledger.n_steps) + i}" for i in range(len(expected))]
    return OracleViolation(
        kind="atomicity",
        message=(
            f"recovered state is neither of {{{', '.join(labels)}}} after "
            f"{steps_completed} committed step(s): partial or lost transaction"
        ),
        steps_completed=steps_completed,
        observed=observed,
        expected=expected,
    )
