"""Exhaustive crash-state exploration for a single heap + engine.

The explorer turns "does this engine recover correctly?" into a finite
enumeration:

1. **Count** the workload's mutating device operations by arming an
   unreachably large fail-point budget and reading back how much of it
   ticked away (:meth:`NVMDevice.scheduled_crash_remaining`).  Setup is
   excluded — the countdown is armed after setup commits and its backup
   sync drains — so every numbered point lands inside a step transaction
   or the trailing sync drain, the window recovery must handle.
2. **Record the ledger**: one uncrashed golden run, observing the
   logical state after setup and after every step
   (:class:`~repro.check.oracle.Ledger`).
3. For every crash point (or an evenly-spaced sample in quick mode),
   **replay** the workload with the fail-point armed, let the power
   failure fire, recover with :func:`~repro.tx.recovery.reopen_after_crash`,
   and judge the recovered heap with the ledger oracle, the workload's
   structure validators, and (for backup engines) main/backup agreement.
4. **Prune** redundant states: the device records a digest of the
   pre-resolution crash image (durable bytes + dirty-line overlay) at
   crash time; two points with equal digests behave identically under
   every crash policy, so only the first is explored.  Points separated
   only by reads, or by a fence that persisted nothing new, collapse.
5. **Nest**: for each novel crash state, re-crash at every mutating
   operation *of recovery itself* (and its post-recovery sync drain),
   then recover again — recovery must be idempotent under its own power
   failures (paper §3: "both directions are idempotent").

RANDOM-policy sampling replays surviving-word lotteries with distinct
device seeds, covering torn writes beyond the all-or-nothing policies.

**Media-corruption mode** (``Scenario.media`` + ``corrupt_lines``)
additionally rots the durable image *between the crash and recovery*:
seeded bit flips land in the heap and backup-mirror bytes while the
machine is "off", exactly when no code can observe them happening.  The
oracle is then *detect-or-repair, never silent corruption*: with
``media="protected"`` recovery must either repair every flipped line
(checksum scrub against the surviving copy) and satisfy the usual
ledger/validator battery, or degrade with a typed
:class:`~repro.errors.MediaError` — recovered state that silently
disagrees with the ledger is a failure, and so is any line still
detectably bad after the post-recovery scrub.  With
``media="unprotected"`` the same flips go undetected, which is how the
checker demonstrates the failure class the sidecar exists to close.

**Adversarial mode** (``Scenario.stale_lines`` + ``tree``) goes one step
further: instead of random flips, changed live lines (and their backup
partners) are replayed with their setup-time bytes *and the matching
stale CRCs forged into the sidecar* — consistent multi-line corruption
that per-line checksums verify clean.  Checksum-only configurations
demonstrably serve stale state (the must-fail leg); with
``tree="streamed"``/``"eager"`` the persistent integrity tree's root
still disputes the replayed lines, and the same detect-or-repair oracle
passes: root-verified repair from a surviving copy, or a typed degrade.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    DeviceCrashedError,
    MediaError,
    PoolCorruptionError,
    RecoveryError,
)
from ..nvm.device import CrashPolicy, NVMDevice
from ..nvm.latency import CACHE_LINE
from ..runtime.registry import EngineInfo, engine_info, registered_engines
from ..tx.recovery import reopen_after_crash, verify_backup_consistency
from .oracle import Ledger, OracleViolation, check_against_ledger
from .workload import CANNED_WORKLOADS, CheckWorkload, build_stack

#: fail-point budget no sane canned workload exhausts
OP_BUDGET = 1_000_000

_LINE_SHIFT = CACHE_LINE.bit_length() - 1


@dataclass(frozen=True)
class Scenario:
    """One fully-determined crash experiment — the unit of replay.

    ``crash_after`` counts completed mutating device operations from the
    end of setup: the power fails just before operation
    ``crash_after + 1`` (0 = before the first one).  ``nested_after``
    additionally crashes recovery itself, counted the same way from the
    start of the reopen.
    """

    engine: str
    workload: str = "pairs"
    crash_after: int = 1
    policy: CrashPolicy = CrashPolicy.DROP_ALL
    survival: float = 0.5
    device_seed: int = 0
    nested_after: Optional[int] = None
    nested_policy: CrashPolicy = CrashPolicy.DROP_ALL
    #: "off" | "protected" | "unprotected" — attach a media-fault model
    media: str = "off"
    #: seeded bit flips injected into heap+backup between crash and recovery
    corrupt_lines: int = 0
    corrupt_seed: int = 0
    #: "off" | "streamed" | "eager" — maintain the persistent integrity
    #: tree (requires media="protected")
    tree: str = "off"
    #: adversarial consistent corruption: replay this many live main
    #: lines (plus their backup partners) with setup-time bytes AND the
    #: matching stale CRCs, between the crash and recovery
    stale_lines: int = 0

    def describe(self) -> str:
        parts = [
            f"engine={self.engine}",
            f"workload={self.workload}",
            f"crash_after={self.crash_after}",
            f"policy={self.policy.value}",
        ]
        if self.policy is CrashPolicy.RANDOM:
            parts.append(f"survival={self.survival}")
            parts.append(f"device_seed={self.device_seed}")
        if self.nested_after is not None:
            parts.append(
                f"nested_after={self.nested_after} ({self.nested_policy.value})"
            )
        if self.media != "off":
            parts.append(
                f"media={self.media} corrupt_lines={self.corrupt_lines} "
                f"corrupt_seed={self.corrupt_seed}"
            )
            if self.tree != "off":
                parts.append(f"tree={self.tree}")
            if self.stale_lines:
                parts.append(f"stale_lines={self.stale_lines}")
        return ", ".join(parts)


@dataclass
class CheckFailure:
    """A scenario whose recovered state an oracle rejected."""

    scenario: Scenario
    violation: OracleViolation

    def __str__(self) -> str:
        return f"{self.scenario.describe()}: {self.violation}"


@dataclass
class ExplorationReport:
    """What one engine × workload sweep covered and found."""

    engine: str
    workload: str
    n_ops: int = 0
    states_explored: int = 0
    states_pruned: int = 0
    nested_explored: int = 0
    failures: List[CheckFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (
            f"{self.engine:>16} x {self.workload:<6} "
            f"ops={self.n_ops:<4} explored={self.states_explored:<5} "
            f"pruned={self.states_pruned:<5} nested={self.nested_explored:<5} {status}"
        )


def _sample_points(lo: int, hi: int, limit: Optional[int]) -> List[int]:
    """All integers lo..hi, or an evenly spaced sample hitting both ends."""
    n = hi - lo + 1
    if n <= 0:
        return []
    if limit is None or n <= limit:
        return list(range(lo, hi + 1))
    if limit == 1:
        return [lo]
    step = (n - 1) / (limit - 1)
    return sorted({lo + round(i * step) for i in range(limit)})


class CrashExplorer:
    """Sweeps every crash state of one engine running one workload.

    Args:
        engine: registered engine name (resolved via the runtime
            registry; the same factory rebuilds the engine for
            recovery, like a restart with the same binary).
        workload: canned workload name, or pass ``workload_factory``.
        workload_factory: zero-arg callable returning a fresh
            :class:`CheckWorkload`; overrides ``workload``.
        engine_factory: override the registry factory (tests inject
            deliberately broken engines this way).
        device_seed: base seed; RANDOM samples perturb it.
    """

    def __init__(
        self,
        engine: str,
        workload: str = "pairs",
        workload_factory: Optional[Callable[[], CheckWorkload]] = None,
        engine_factory: Optional[Callable[[], Any]] = None,
        device_seed: int = 0,
    ):
        self.engine_name = engine
        if engine_factory is not None:
            self._engine_factory = engine_factory
        else:
            info: EngineInfo = engine_info(engine)
            self._engine_factory = info.factory
        if workload_factory is None:
            if workload not in CANNED_WORKLOADS:
                raise ValueError(
                    f"unknown workload '{workload}'; choose from {sorted(CANNED_WORKLOADS)}"
                )
            workload_factory = CANNED_WORKLOADS[workload]
        self.workload_name = workload
        self._workload_factory = workload_factory
        self.device_seed = device_seed
        # a worker process can only rebuild this explorer from names; a
        # custom (closure) factory keeps the sweep in-process
        self._portable = engine_factory is None and workload in CANNED_WORKLOADS and (
            workload_factory is CANNED_WORKLOADS.get(workload)
        )

    # -- replay primitives ---------------------------------------------------

    def _fresh(
        self, seed: int, media: str = "off", tree: str = "off"
    ) -> Tuple[Any, Any, NVMDevice, CheckWorkload]:
        heap, engine, device = build_stack(
            self._engine_factory, seed=seed, media=media, tree=tree
        )
        workload = self._workload_factory()
        workload.setup(heap)
        heap.drain()
        return heap, engine, device, workload

    @staticmethod
    def _stale_snapshot(device: NVMDevice, heap: Any, scenario: Scenario):
        """Setup-time line images for the stale-replay adversary.

        Captured right after setup drains (so every image is a
        legitimately persisted state with a CRC the sidecar once
        vouched for), covering the live main lines and their
        backup-mirror partners."""
        media = device.media
        if media is None or scenario.stale_lines <= 0:
            return None
        region = heap.region
        live = heap.allocator.live_ranges()
        spans = [(region.offset + off, size) for off, size in live]
        images = media.snapshot_lines(spans)
        main_lines = sorted(images)
        partner: Dict[int, int] = {}
        backup = region.pool.regions.get("backup")
        if backup is not None and backup.size >= region.size:
            images.update(
                media.snapshot_lines(
                    [(backup.offset + off, size) for off, size in live]
                )
            )
            for line in main_lines:
                rel = (line << _LINE_SHIFT) - region.offset
                partner[line] = (backup.offset + rel) >> _LINE_SHIFT
        return {"images": images, "main": main_lines, "partner": partner}

    @staticmethod
    def _inject_stale(device: NVMDevice, scenario: Scenario, snap) -> None:
        """Replay stale-but-consistent line images into the crashed
        durable state: seeded live main lines that changed since setup
        get their setup-time bytes back *with the matching stale CRC
        forged in the sidecar*, and so do their backup partners — a
        consistent multi-line replay that per-line checksums verify
        clean.  Only the integrity tree still disputes it."""
        media = device.media
        if media is None or snap is None or scenario.stale_lines <= 0:
            return
        durable = device._durable
        images = snap["images"]
        changed = []
        for line in snap["main"]:
            base = line << _LINE_SHIFT
            if bytes(durable[base : base + CACHE_LINE]) != images[line]:
                changed.append(line)
        if not changed:
            return
        rng = random.Random(scenario.corrupt_seed ^ 0x5A1E)
        chosen = sorted(rng.sample(changed, min(scenario.stale_lines, len(changed))))
        targets = list(chosen)
        partner = snap["partner"]
        for line in chosen:
            p = partner.get(line)
            if p is not None and p in images:
                targets.append(p)
        media.replay_stale(images, targets)

    @staticmethod
    def _inject_corruption(device: NVMDevice, heap: Any, scenario: Scenario) -> None:
        """Rot the crashed durable image: seeded bit flips into the heap
        and its backup mirror, while the machine is "off"."""
        media = device.media
        if media is None or scenario.corrupt_lines <= 0:
            return
        # target the *live* allocations (and their backup-mirror image) —
        # rot in free space is unobservable and proves nothing
        region = heap.region
        live = heap.allocator.live_ranges()
        spans = [(region.offset + off, size) for off, size in live]
        backup = region.pool.regions.get("backup")
        if backup is not None and backup.size >= region.size:
            spans += [(backup.offset + off, size) for off, size in live]
        if not spans:
            spans = [(region.offset, region.size)]
        media.inject_flips(
            scenario.corrupt_lines,
            ranges=spans,
            rng=random.Random(scenario.corrupt_seed),
        )

    def count_ops(self) -> int:
        """Mutating device operations between end-of-setup and quiescence."""
        heap, _engine, device, workload = self._fresh(self.device_seed)
        device.schedule_crash(OP_BUDGET, CrashPolicy.DROP_ALL)
        for i in range(workload.n_steps):
            workload.step(heap, i)
        heap.drain()
        remaining = device.scheduled_crash_remaining()
        device.cancel_scheduled_crash()
        if remaining is None:
            raise RuntimeError("workload exceeded the fail-point budget")
        return OP_BUDGET - remaining

    def golden_ledger(self) -> Ledger:
        """Uncrashed run recording the logical state after every step."""
        heap, _engine, _device, workload = self._fresh(self.device_seed)
        ledger = Ledger(workload=self.workload_name)
        ledger.states.append(workload.observe(heap))
        for i in range(workload.n_steps):
            workload.step(heap, i)
            ledger.states.append(workload.observe(heap))
        heap.drain()
        return ledger

    # -- one scenario --------------------------------------------------------

    def replay(
        self, scenario: Scenario, ledger: Optional[Ledger] = None
    ) -> Tuple[Optional[CheckFailure], Optional[str]]:
        """Run one scenario; returns (failure-or-None, crash fingerprint).

        A ``None`` fingerprint means the fail-point never fired (the
        point lies beyond the workload), in which case nothing was
        checked.
        """
        if ledger is None:
            ledger = self.golden_ledger()
        heap, _engine, device, workload = self._fresh(
            scenario.device_seed, media=scenario.media, tree=scenario.tree
        )
        snap = self._stale_snapshot(device, heap, scenario)
        device.schedule_crash(
            scenario.crash_after, scenario.policy, scenario.survival
        )
        steps_done = 0
        crashed = False
        try:
            for i in range(workload.n_steps):
                workload.step(heap, i)
                steps_done += 1
            heap.drain()
        except DeviceCrashedError:
            crashed = True
        if not crashed:
            device.cancel_scheduled_crash()
            return None, None
        fingerprint = device.last_crash_fingerprint
        self._inject_corruption(device, heap, scenario)
        self._inject_stale(device, scenario, snap)

        if scenario.nested_after is not None:
            try:
                crashed_again = self._crash_inside_recovery(device, scenario)
            except (MediaError, PoolCorruptionError):
                # the first recovery hit the rot and degraded with a typed
                # error before the nested fail-point fired — detection, not
                # silence, so the scenario passes under "protected".
                # PoolCorruptionError covers self-validating metadata
                # (pool header, allocator tables) parsing the rot before
                # the post-open scrub could mark the line.
                device.cancel_scheduled_crash()
                if scenario.media == "protected":
                    return None, fingerprint
                raise
            if not crashed_again:
                return None, fingerprint

        violation = self._judge(device, workload, ledger, steps_done, scenario.media)
        if violation is None:
            return None, fingerprint
        return CheckFailure(scenario=scenario, violation=violation), fingerprint

    def _crash_inside_recovery(self, device: NVMDevice, scenario: Scenario) -> bool:
        """Arm the nested fail-point and run recovery until it fires."""
        device.schedule_crash(
            scenario.nested_after, scenario.nested_policy, scenario.survival
        )
        try:
            heap, _engine, _report = reopen_after_crash(device, self._engine_factory)
            heap.drain()
        except DeviceCrashedError:
            return True
        device.cancel_scheduled_crash()
        return False

    def _judge(
        self,
        device: NVMDevice,
        workload: CheckWorkload,
        ledger: Ledger,
        steps_done: int,
        media_mode: str = "off",
    ) -> Optional[OracleViolation]:
        """Final (un-crashed) recovery + the full oracle battery.

        In media mode the contract is detect-or-repair: a typed
        :class:`MediaError` out of recovery or observation is an accepted
        degrade (the corruption was *caught*), silent disagreement with
        the ledger is the failure being hunted, and — under
        ``"protected"`` — so is any line left detectably bad after the
        post-recovery scrub.
        """
        try:
            heap, engine, _report = reopen_after_crash(device, self._engine_factory)
        except MediaError as exc:
            if media_mode != "off":
                return None  # typed detection — never served silently
            return OracleViolation(
                kind="recovery",
                message=f"recovery raised {type(exc).__name__}: {exc}",
                steps_completed=steps_done,
            )
        except PoolCorruptionError as exc:
            media = getattr(device, "media", None)
            if media_mode == "protected" and media is not None and media.faulty:
                # self-validating metadata (pool header, allocator
                # tables) caught the injected rot and refused to mount —
                # fail-stop detection, not silence
                return None
            return OracleViolation(
                kind="recovery",
                message=f"recovery raised {type(exc).__name__}: {exc}",
                steps_completed=steps_done,
            )
        except Exception as exc:  # recovery itself must never fail
            return OracleViolation(
                kind="recovery",
                message=f"recovery raised {type(exc).__name__}: {exc}",
                steps_completed=steps_done,
            )
        try:
            observed = workload.observe(heap)
        except MediaError as exc:
            if media_mode != "off":
                return None  # typed degrade on read, not silent garbage
            return OracleViolation(
                kind="validator",
                message=f"recovered heap unreadable: {type(exc).__name__}: {exc}",
                steps_completed=steps_done,
            )
        except Exception as exc:
            return OracleViolation(
                kind="validator",
                message=f"recovered heap unreadable: {type(exc).__name__}: {exc}",
                steps_completed=steps_done,
            )
        violation = check_against_ledger(ledger, observed, steps_done)
        if violation is not None:
            return violation
        try:
            workload.validate(heap)
            heap.drain()
            verify_backup_consistency(heap)
        except AssertionError as exc:
            return OracleViolation(
                kind="validator",
                message=str(exc) or "structure validator failed",
                steps_completed=steps_done,
                observed=observed,
            )
        except MediaError as exc:
            if media_mode != "off":
                return None  # typed degrade while validating — detected
            return OracleViolation(
                kind="validator",
                message=f"{type(exc).__name__}: {exc}",
                steps_completed=steps_done,
            )
        except RecoveryError as exc:
            return OracleViolation(
                kind="backup",
                message=str(exc),
                steps_completed=steps_done,
            )
        media = device.media
        if media_mode == "protected" and media is not None:
            silent = [ln for ln in media.bad_lines() if ln not in media.lost]
            if silent:
                return OracleViolation(
                    kind="media",
                    message=(
                        "silent corruption survived recovery + scrub: "
                        f"lines {silent[:8]}"
                    ),
                    steps_completed=steps_done,
                )
        return None

    # -- recovery op counting (for nested sweeps) ----------------------------

    def _count_recovery_ops(self, image: NVMDevice) -> int:
        device = image.clone_durable(seed=self.device_seed)
        device.schedule_crash(OP_BUDGET, CrashPolicy.DROP_ALL)
        heap, _engine, _report = reopen_after_crash(device, self._engine_factory)
        heap.drain()
        remaining = device.scheduled_crash_remaining()
        device.cancel_scheduled_crash()
        if remaining is None:
            raise RuntimeError("recovery exceeded the fail-point budget")
        return OP_BUDGET - remaining

    def _crash_image(self, scenario: Scenario) -> Optional[NVMDevice]:
        """The durable post-crash device image for ``scenario``, if the
        fail-point fires."""
        heap, _engine, device, _workload = self._fresh(
            scenario.device_seed, media=scenario.media, tree=scenario.tree
        )
        snap = self._stale_snapshot(device, heap, scenario)
        device.schedule_crash(
            scenario.crash_after, scenario.policy, scenario.survival
        )
        try:
            wl = _workload
            for i in range(wl.n_steps):
                wl.step(heap, i)
            heap.drain()
        except DeviceCrashedError:
            self._inject_corruption(device, heap, scenario)
            self._inject_stale(device, scenario, snap)
            return device.clone_durable(seed=self.device_seed)
        device.cancel_scheduled_crash()
        return None

    # -- the sweep -----------------------------------------------------------

    def _replay_many(
        self,
        scenarios: Sequence[Scenario],
        ledger: Ledger,
        workers: int,
    ) -> List[Tuple[Optional[CheckFailure], Optional[str]]]:
        """Replay a batch of scenarios, optionally on a process pool.

        Results come back in scenario order either way (see
        :mod:`repro.parallel`), so the caller's fold — pruning, counter
        updates, failure collection — is byte-identical for any worker
        count.  Explorers built from closures (custom factories) cannot
        cross a process boundary and fall back to the serial loop.
        """
        if workers and workers != 1 and len(scenarios) > 1 and self._portable:
            from ..parallel import fan_out

            jobs = [(scenario, ledger) for scenario in scenarios]
            return fan_out(_replay_job, jobs, workers)
        return [self.replay(scenario, ledger) for scenario in scenarios]

    def explore(
        self,
        max_points: Optional[int] = None,
        random_samples: int = 1,
        survival: float = 0.5,
        nested: bool = True,
        max_nested_points: Optional[int] = 4,
        progress: Optional[Callable[[str], None]] = None,
        media: str = "off",
        corrupt_lines: int = 2,
        tree: str = "off",
        stale_lines: int = 0,
        workers: int = 0,
    ) -> ExplorationReport:
        """Sweep crash points; returns the coverage + failure report.

        Args:
            max_points: cap on outer crash points (evenly sampled when
                the workload has more); ``None`` = exhaustive.
            random_samples: RANDOM-policy lotteries per novel state
                (0 disables torn-write sampling).
            nested: also crash inside recovery at every novel state.
            max_nested_points: cap on nested points per outer state.
            media: ``"protected"``/``"unprotected"`` additionally rots
                ``corrupt_lines`` seeded durable bits (heap + backup)
                between each crash and its recovery; the oracle becomes
                detect-or-repair, never silent corruption.
            corrupt_lines: bit flips injected per scenario in media mode.
            tree: ``"streamed"``/``"eager"`` maintains the persistent
                integrity tree (``media="protected"`` only).
            stale_lines: adversarial consistent corruption — replay this
                many changed live lines (plus backup partners) with
                setup-time bytes and forged matching CRCs between each
                crash and its recovery.  Checksum-only protection
                verifies the replay clean; only a tree catches it.
            workers: fan scenario replays over this many processes
                (0/1 = serial).  Each replay builds its own stack, so
                the report is byte-identical for any worker count; only
                wall-clock changes.

        The sweep runs in three deterministic phases — base points,
        RANDOM lotteries for the novel states, nested recovery crashes —
        so the batches are wide enough to fan out.  Every phase folds
        its ordered result list the same way serial exploration would.
        """
        report = ExplorationReport(engine=self.engine_name, workload=self.workload_name)
        report.n_ops = self.count_ops()
        ledger = self.golden_ledger()
        # crash_after=p fires just before mutating op p+1, so p ranges over
        # 0 (nothing of the steps durable yet) .. n_ops-1 (all but the
        # final operation done)
        bases = [
            Scenario(
                engine=self.engine_name,
                workload=self.workload_name,
                crash_after=point,
                policy=CrashPolicy.DROP_ALL,
                device_seed=self.device_seed,
                media=media,
                corrupt_lines=corrupt_lines if media != "off" else 0,
                corrupt_seed=self.device_seed * 1000 + point,
                tree=tree if media == "protected" else "off",
                stale_lines=stale_lines if media != "off" else 0,
            )
            for point in _sample_points(0, report.n_ops - 1, max_points)
        ]
        seen: Dict[str, int] = {}
        novel: List[Scenario] = []
        for base, (failure, fingerprint) in zip(
            bases, self._replay_many(bases, ledger, workers)
        ):
            if progress is not None:
                progress(
                    f"{self.engine_name}/{self.workload_name}: "
                    f"point {base.crash_after}/{report.n_ops}"
                )
            if fingerprint is None:
                continue
            if fingerprint in seen:
                # same durable bytes + same dirty overlay as an earlier
                # point: every policy resolves it identically
                report.states_pruned += 1
                continue
            seen[fingerprint] = base.crash_after
            report.states_explored += 1
            if failure is not None:
                report.failures.append(failure)
            novel.append(base)
        lotteries = [
            replace(
                base,
                policy=CrashPolicy.RANDOM,
                survival=survival,
                device_seed=self.device_seed + 1 + sample,
            )
            for base in novel
            for sample in range(random_samples)
        ]
        for failure, fired in self._replay_many(lotteries, ledger, workers):
            if fired is not None:
                report.states_explored += 1
                if failure is not None:
                    report.failures.append(failure)
        if nested:
            nested_scenarios: List[Scenario] = []
            for base in novel:
                nested_scenarios.extend(
                    self._nested_scenarios(base, max_nested_points)
                )
            for failure, fired in self._replay_many(nested_scenarios, ledger, workers):
                if fired is None:
                    continue
                report.nested_explored += 1
                if failure is not None:
                    report.failures.append(failure)
        return report

    def _nested_scenarios(
        self,
        base: Scenario,
        max_nested_points: Optional[int],
    ) -> List[Scenario]:
        """The crash-during-recovery scenarios nested under ``base``."""
        image = self._crash_image(base)
        if image is None:
            return []
        try:
            n_recovery_ops = self._count_recovery_ops(image)
        except (MediaError, PoolCorruptionError):
            # recovery on this image degrades with a typed error before
            # quiescing; there is no op timeline to nest crashes into
            return []
        return [
            replace(base, nested_after=q)
            for q in _sample_points(0, n_recovery_ops - 1, max_nested_points)
        ]


def _replay_job(
    job: Tuple[Scenario, Ledger]
) -> Tuple[Optional[CheckFailure], Optional[str]]:
    """One scenario replay in a worker process.

    Module-level so it pickles; the explorer is rebuilt from the
    scenario's registry names (engine, workload) — the same "restart
    with the same binary" the recovery path already relies on.
    """
    scenario, ledger = job
    explorer = CrashExplorer(
        scenario.engine,
        workload=scenario.workload,
        device_seed=scenario.device_seed,
    )
    return explorer.replay(scenario, ledger)


def replay_scenario(
    scenario: Scenario,
    workload_factory: Optional[Callable[[], CheckWorkload]] = None,
    engine_factory: Optional[Callable[[], Any]] = None,
) -> Optional[CheckFailure]:
    """Re-run one scenario from scratch — the repro-snippet entry point."""
    explorer = CrashExplorer(
        scenario.engine,
        workload=scenario.workload,
        workload_factory=workload_factory,
        engine_factory=engine_factory,
        device_seed=scenario.device_seed,
    )
    failure, _fingerprint = explorer.replay(scenario)
    return failure


def sweep_registry(
    workloads: Sequence[str] = ("pairs",),
    engines: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: int = 0,
    **explore_kwargs: Any,
) -> List[ExplorationReport]:
    """Run the explorer over every standalone-recoverable registered engine.

    Engines declaring ``needs_chain_repair`` (the in-place chain replica)
    cannot recover alone and are swept by
    :class:`repro.check.chain.ChainCrashExplorer` instead; deliberately
    unsafe baselines (``recoverable=False``) are skipped.  ``workers``
    fans each explorer's scenario replays over a process pool; the
    reports are byte-identical for any worker count.
    """
    reports: List[ExplorationReport] = []
    for name, info in registered_engines().items():
        if engines is not None and name not in engines:
            continue
        caps = info.capabilities
        if not caps.recoverable or caps.needs_chain_repair:
            continue
        for workload in workloads:
            explorer = CrashExplorer(name, workload=workload)
            reports.append(
                explorer.explore(progress=progress, workers=workers, **explore_kwargs)
            )
    return reports
