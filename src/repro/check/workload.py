"""Instrumented workloads for the crash-consistency checker.

A :class:`CheckWorkload` is a deterministic script the explorer can
replay any number of times: a committed *setup* phase, a sequence of
*steps* (each one transaction), and an *observe* function projecting the
heap onto a comparable logical state.  The explorer runs the script once
uncrashed to record the **committed-transaction ledger** — the logical
state after setup and after each step — and then replays it with a
power failure scheduled at every mutating device operation, checking
each recovered heap against that ledger (see :mod:`repro.check.oracle`).

Determinism contract: given the same engine factory and device seed, a
workload must issue the same allocations and device operations on every
replay.  Handles recorded during ``setup`` (object ids) may be stored on
the instance — each replay re-runs ``setup`` on a fresh stack and
re-records them identically.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..heap import FixedStr, Int64, PersistentHeap, PersistentStruct
from ..kvstore import KVStore, PersistentList, PersistentRing
from ..nvm.backend import make_device
from ..nvm.device import NVMDevice
from ..nvm.pool import PmemPool

#: the pool must fit every engine's worst-case footprint (undo's
#: data-carrying log region, kamino's full mirror); the heap is kept
#: small so crash-state fingerprints hash quickly
POOL_SIZE = 8 << 20
HEAP_SIZE = 1 << 20


class CheckPair(PersistentStruct):
    """Two dependent fields: tearing one against the other is the bug."""

    fields = [("key", Int64()), ("value", FixedStr(48))]


def build_stack(
    engine_factory: Callable[[], Any],
    seed: int = 0,
    pool_size: int = POOL_SIZE,
    heap_size: int = HEAP_SIZE,
    media: str = "off",
    tree: str = "off",
) -> Tuple[PersistentHeap, Any, NVMDevice]:
    """Fresh device + pool + heap bound to a new engine instance.

    ``media`` attaches a :class:`~repro.integrity.model.MediaFaultModel`
    before the pool is formatted: ``"protected"`` maintains the checksum
    sidecar (scrub/repair works), ``"unprotected"`` injects without
    detection (the demonstration configuration), ``"off"`` attaches
    nothing.  ``tree`` (``"streamed"``/``"eager"``, protected media
    only) additionally maintains the persistent integrity tree, enabling
    detection of consistent stale-CRC replays the sidecar alone misses.
    """
    if tree != "off" and media != "protected":
        raise ValueError("integrity tree requires media='protected'")
    device = make_device(pool_size, seed=seed)
    device.fingerprint_crashes = True
    if media != "off":
        device.attach_media(
            seed=seed,
            protect=media == "protected",
            tree=None if tree == "off" else tree,
        )
    pool = PmemPool.create(device)
    engine = engine_factory()
    heap = PersistentHeap.create(pool, engine, heap_size=heap_size)
    return heap, engine, device


class CheckWorkload:
    """Base class: subclasses define setup/steps/observe (+ validators)."""

    name = "workload"

    @property
    def n_steps(self) -> int:
        raise NotImplementedError

    def setup(self, heap: PersistentHeap) -> None:
        """Commit the baseline state (drained by the explorer)."""
        raise NotImplementedError

    def step(self, heap: PersistentHeap, i: int) -> None:
        """Apply step ``i`` as one transaction."""
        raise NotImplementedError

    def observe(self, heap: PersistentHeap) -> Any:
        """Project the heap onto a comparable logical state."""
        raise NotImplementedError

    def validate(self, heap: PersistentHeap) -> None:
        """Assert structure invariants beyond logical-state equality."""


class PairsWorkload(CheckWorkload):
    """N two-field structs updated by multi-object transactions.

    The canonical canned workload: each transaction updates ``key`` and
    the derived ``value`` of several objects, so any torn or partial
    outcome is visible either across objects (state not in the ledger)
    or within one object (``value`` disagreeing with ``key``).
    """

    name = "pairs"

    #: default transaction script: (object index, new key value) lists
    DEFAULT_TXS: Sequence[Sequence[Tuple[int, int]]] = (
        [(0, 11), (1, 12)],
        [(2, 21)],
        [(0, 31), (2, 32), (3, 33)],
        [(1, 41)],
    )

    def __init__(
        self,
        txs: Optional[Sequence[Sequence[Tuple[int, int]]]] = None,
        n_objects: int = 4,
    ):
        self.txs = [list(tx) for tx in (txs if txs is not None else self.DEFAULT_TXS)]
        self.n_objects = max(
            n_objects, 1 + max((i for tx in self.txs for i, _v in tx), default=0)
        )
        self._oids: List[int] = []

    @property
    def n_steps(self) -> int:
        return len(self.txs)

    def setup(self, heap: PersistentHeap) -> None:
        with heap.transaction():
            objs = [heap.alloc(CheckPair) for _ in range(self.n_objects)]
            for i, o in enumerate(objs):
                o.key = i
                o.value = f"v{i}"
            heap.set_root(objs[0])
        self._oids = [o.oid for o in objs]

    def step(self, heap: PersistentHeap, i: int) -> None:
        with heap.transaction():
            for idx, val in self.txs[i]:
                o = heap.deref(self._oids[idx], CheckPair)
                o.tx_add()
                o.key = val
                o.value = f"v{val}"

    def observe(self, heap: PersistentHeap) -> Dict[int, int]:
        return {
            i: heap.deref(oid, CheckPair).key for i, oid in enumerate(self._oids)
        }

    def validate(self, heap: PersistentHeap) -> None:
        for i, oid in enumerate(self._oids):
            o = heap.deref(oid, CheckPair)
            assert o.value == f"v{o.key}", (
                f"object {i} torn inside: key={o.key} value={o.value!r}"
            )


class KVWorkload(CheckWorkload):
    """B+Tree KV store: puts, overwrites, and a delete.

    ``observe`` is the full logical key→value map; ``validate`` runs the
    tree's own structural invariant checker (sortedness, separator
    bounds, leaf chain).
    """

    name = "kv"

    def __init__(self, n_base: int = 6, value_size: int = 64):
        self.n_base = n_base
        self.value_size = value_size
        self._steps: List[Tuple[str, int, int]] = [
            ("put", n_base, 101),        # insert a new key (splits possible)
            ("put", 0, 102),             # overwrite in place
            ("put", n_base + 1, 103),    # another insert
            ("delete", 1, 0),            # remove + free the blob
            ("put", 2, 104),             # overwrite after the delete
        ]

    @property
    def n_steps(self) -> int:
        return len(self._steps)

    def _value(self, tag: int) -> bytes:
        return bytes([tag % 256]) * 16

    def setup(self, heap: PersistentHeap) -> None:
        kv = KVStore.create(heap, value_size=self.value_size)
        for k in range(self.n_base):
            kv.put(k, self._value(k + 1))
        self._kv = kv

    def _reopen(self, heap: PersistentHeap) -> KVStore:
        if self._kv.heap is not heap:
            self._kv = KVStore.open(heap)
        return self._kv

    def step(self, heap: PersistentHeap, i: int) -> None:
        op, key, tag = self._steps[i]
        kv = self._reopen(heap)
        if op == "put":
            kv.put(key, self._value(tag))
        else:
            kv.delete(key)

    def observe(self, heap: PersistentHeap) -> Dict[int, bytes]:
        kv = self._reopen(heap)
        return {k: heap.read_blob(p) for k, p in kv.tree.items()}

    def validate(self, heap: PersistentHeap) -> None:
        self._reopen(heap).tree.check_invariants()


class ListWorkload(CheckWorkload):
    """Sorted doubly-linked list: splices and unlinks (paper Figure 4).

    ``validate`` asserts forward/backward link agreement, sortedness,
    and the length counter — the reachability invariants a torn splice
    breaks.
    """

    name = "list"

    def __init__(self):
        self._steps: List[Tuple[str, int]] = [
            ("insert", 25),
            ("insert", 5),
            ("delete", 20),
            ("update", 30),
            ("insert", 27),
        ]

    @property
    def n_steps(self) -> int:
        return len(self._steps)

    def setup(self, heap: PersistentHeap) -> None:
        plist = PersistentList.create(heap)
        for key in (10, 20, 30):
            plist.insert(key, float(key))
        heap.set_root(plist.root)
        self._root_oid = plist.root.oid
        self._plist = plist

    def _reopen(self, heap: PersistentHeap) -> PersistentList:
        if self._plist.heap is not heap:
            self._plist = PersistentList.open(heap, self._root_oid)
        return self._plist

    def step(self, heap: PersistentHeap, i: int) -> None:
        op, key = self._steps[i]
        plist = self._reopen(heap)
        if op == "insert":
            plist.insert(key, float(key))
        elif op == "delete":
            plist.delete(key)
        else:
            plist.update(key, float(key) + 0.5)

    def observe(self, heap: PersistentHeap) -> Tuple[Tuple[int, float], ...]:
        return tuple((n.key, n.value) for n in self._reopen(heap))

    def validate(self, heap: PersistentHeap) -> None:
        self._reopen(heap).check_invariants()


class RingWorkload(CheckWorkload):
    """Persistent ring appends: the engine-independent durability case.

    The ring is its own atomicity mechanism (record CRC + word-atomic
    index publication), so each append either becomes fully visible or
    stays invisible — exactly the committed-prefix contract the oracle
    checks.  ``validate`` re-opens the ring, which re-parses every
    record header and CRC.
    """

    name = "ring"

    REGION = "check_ring"

    def __init__(self, n_appends: int = 5):
        self.n_appends = n_appends

    @property
    def n_steps(self) -> int:
        return self.n_appends

    def setup(self, heap: PersistentHeap) -> None:
        region = heap.pool.create_region(self.REGION, 64 << 10)
        self._ring = PersistentRing.create(region)

    def _reopen(self, heap: PersistentHeap) -> PersistentRing:
        if self._ring.region.pool is not heap.pool:
            self._ring = PersistentRing.open(heap.pool.region(self.REGION))
        return self._ring

    def step(self, heap: PersistentHeap, i: int) -> None:
        self._reopen(heap).append(bytes([i + 1]) * (24 + 8 * i))

    def observe(self, heap: PersistentHeap) -> Tuple[bytes, ...]:
        return tuple(self._reopen(heap).peek_all())

    def validate(self, heap: PersistentHeap) -> None:
        # re-parse every surviving record (header + CRC) from scratch
        ring = PersistentRing.open(heap.pool.region(self.REGION))
        for payload in ring.peek_all():
            assert len(payload) > 0


#: name -> zero-arg factory for the canned workloads the CLI exposes
CANNED_WORKLOADS: Dict[str, Callable[[], CheckWorkload]] = {
    "pairs": PairsWorkload,
    "kv": KVWorkload,
    "list": ListWorkload,
    "ring": RingWorkload,
}
