"""Shrinking failing scenarios to their simplest reproduction.

A sweep can surface dozens of failing crash points for one underlying
bug.  The minimizer reduces a failure along three axes, cheapest first:

1. **Drop the nested crash** — if the outer crash alone fails, the
   recovery re-entry was noise.
2. **Simplify the policy** — a RANDOM (torn-write lottery) failure that
   also fails under deterministic ``DROP_ALL`` needs no seed to replay.
3. **Find the earliest failing point** — scan crash points upward from 0
   and stop at the first that still fails (the bug's first observable
   trigger; later points usually fail for the same reason).

Every candidate is judged by an actual replay
(:func:`repro.check.explorer.replay_scenario`), so the result is a real,
self-contained failure — the emitted snippet re-runs it with nothing but
the public API.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Optional

from ..nvm.device import CrashPolicy
from .explorer import CheckFailure, Scenario, replay_scenario
from .workload import CheckWorkload


def minimize_failure(
    failure: CheckFailure,
    workload_factory: Optional[Callable[[], CheckWorkload]] = None,
    engine_factory: Optional[Callable[[], Any]] = None,
) -> CheckFailure:
    """Shrink ``failure`` to the simplest scenario that still fails."""

    def still_fails(candidate: Scenario) -> Optional[CheckFailure]:
        return replay_scenario(
            candidate,
            workload_factory=workload_factory,
            engine_factory=engine_factory,
        )

    best = failure
    scenario = failure.scenario

    if scenario.nested_after is not None:
        shrunk = still_fails(replace(scenario, nested_after=None))
        if shrunk is not None:
            best, scenario = shrunk, shrunk.scenario

    if scenario.policy is CrashPolicy.RANDOM:
        shrunk = still_fails(
            replace(scenario, policy=CrashPolicy.DROP_ALL, device_seed=0)
        )
        if shrunk is not None:
            best, scenario = shrunk, shrunk.scenario

    if scenario.media != "off":
        # if it fails without the rot, the media corruption was noise;
        # else drop each injection axis separately, then try the
        # single-flip / single-replay version of the same failure
        shrunk = still_fails(
            replace(scenario, media="off", corrupt_lines=0, stale_lines=0,
                    tree="off")
        )
        if shrunk is not None:
            best, scenario = shrunk, shrunk.scenario
        else:
            if scenario.stale_lines > 0 and scenario.corrupt_lines > 0:
                # one of the two corruption kinds may carry the failure
                shrunk = still_fails(replace(scenario, corrupt_lines=0))
                if shrunk is not None:
                    best, scenario = shrunk, shrunk.scenario
                else:
                    shrunk = still_fails(replace(scenario, stale_lines=0))
                    if shrunk is not None:
                        best, scenario = shrunk, shrunk.scenario
            if scenario.corrupt_lines > 1:
                shrunk = still_fails(replace(scenario, corrupt_lines=1))
                if shrunk is not None:
                    best, scenario = shrunk, shrunk.scenario
            if scenario.stale_lines > 1:
                shrunk = still_fails(replace(scenario, stale_lines=1))
                if shrunk is not None:
                    best, scenario = shrunk, shrunk.scenario

    for point in range(0, scenario.crash_after):
        shrunk = still_fails(replace(scenario, crash_after=point))
        if shrunk is not None:
            best = shrunk
            break
    return best


def repro_snippet(failure: CheckFailure) -> str:
    """A paste-into-a-test reproduction of ``failure``.

    The snippet is self-contained for registry engines and canned
    workloads; failures injected through custom factories note that the
    factory must be supplied at replay time.
    """
    s = failure.scenario
    lines = [
        "# crash-consistency failure reproduction",
        f"# {failure.violation}",
        "from repro.check import Scenario, replay_scenario",
        "from repro.nvm.device import CrashPolicy",
        "",
        "failure = replay_scenario(Scenario(",
        f"    engine={s.engine!r},",
        f"    workload={s.workload!r},",
        f"    crash_after={s.crash_after},",
        f"    policy=CrashPolicy.{s.policy.name},",
    ]
    if s.policy is CrashPolicy.RANDOM:
        lines.append(f"    survival={s.survival},")
        lines.append(f"    device_seed={s.device_seed},")
    if s.nested_after is not None:
        lines.append(f"    nested_after={s.nested_after},")
        lines.append(f"    nested_policy=CrashPolicy.{s.nested_policy.name},")
    if s.media != "off":
        lines.append(f"    media={s.media!r},")
        lines.append(f"    corrupt_lines={s.corrupt_lines},")
        lines.append(f"    corrupt_seed={s.corrupt_seed},")
        if s.tree != "off":
            lines.append(f"    tree={s.tree!r},")
        if s.stale_lines:
            lines.append(f"    stale_lines={s.stale_lines},")
    lines.append("))")
    lines.append("assert failure is not None, 'no longer reproduces'")
    return "\n".join(lines)
