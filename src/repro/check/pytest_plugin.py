"""Pytest integration for the crash-consistency checker.

Loaded via ``pytest_plugins = ["repro.check.pytest_plugin"]`` (the
repo's own ``tests/conftest.py`` does this).  It contributes:

* ``--check-budget=quick|full`` — how deep crash sweeps go.  ``quick``
  (the default, and what CI's check-smoke job runs) samples crash
  points; ``full`` is exhaustive and meant for nightly/local runs.
* the ``check_budget`` fixture — the resolved
  :class:`CheckBudget`, which tests splat into
  :meth:`CrashExplorer.explore` / :meth:`ChainCrashExplorer.explore`;
* the ``assert_engine_crash_consistent`` fixture — the one-line form:
  sweep an engine × workload under the session budget and fail the test
  with each failure's minimized repro snippet if anything is found.
* ``--contention-seeds=N`` — seeds per contended multi-client scenario
  (the zipfian YCSB-A battery in ``tests/runtime/``), mirroring
  ``--nemesis-seeds``.
* ``--serve-seeds=N`` — device seeds per serving-layer crash sweep
  (``tests/serve/``), same shape as the other seed knobs.
* ``--media-faults`` — opt into the deep media-fault sweeps (tests
  marked ``@pytest.mark.media``); without the flag those tests skip.
  The quick media-integrity tests run unconditionally.
* ``--cluster`` — opt into the deep sharded-cluster sweeps (tests
  marked ``@pytest.mark.cluster``: full migration-window crash
  exploration, multi-seed corpus runs); the quick cluster tests run
  unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import pytest

from .explorer import CrashExplorer
from .minimize import minimize_failure, repro_snippet


@dataclass(frozen=True)
class CheckBudget:
    """Exploration depth knobs shared by every checker-driven test."""

    name: str
    max_points: Optional[int]
    random_samples: int
    max_nested_points: Optional[int]
    chain_max_points: Optional[int]

    def explore_kwargs(self) -> Dict[str, Any]:
        return {
            "max_points": self.max_points,
            "random_samples": self.random_samples,
            "max_nested_points": self.max_nested_points,
        }


BUDGETS = {
    "quick": CheckBudget(
        name="quick",
        max_points=24,
        random_samples=1,
        max_nested_points=3,
        chain_max_points=8,
    ),
    "full": CheckBudget(
        name="full",
        max_points=None,
        random_samples=2,
        max_nested_points=None,
        chain_max_points=None,
    ),
}


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--check-budget",
        choices=sorted(BUDGETS),
        default="quick",
        help="crash-consistency sweep depth (quick samples, full is exhaustive)",
    )
    parser.addoption(
        "--nemesis-seeds",
        type=int,
        default=2,
        help="seeds per nemesis fault scenario (tests/faults); raise for "
        "deeper sweeps, e.g. --nemesis-seeds=5",
    )
    parser.addoption(
        "--contention-seeds",
        type=int,
        default=2,
        help="seeds per contended-workload scenario (the multi-client "
        "zipfian battery); raise for deeper sweeps, e.g. "
        "--contention-seeds=5",
    )
    parser.addoption(
        "--serve-seeds",
        type=int,
        default=2,
        help="device seeds per serving-layer crash sweep (tests/serve); "
        "raise for deeper sweeps, e.g. --serve-seeds=5",
    )
    parser.addoption(
        "--media-faults",
        action="store_true",
        default=False,
        help="run the deep media-fault sweeps (tests marked 'media'); "
        "the quick integrity tests run regardless",
    )
    parser.addoption(
        "--cluster",
        action="store_true",
        default=False,
        help="run the deep sharded-cluster sweeps (tests marked "
        "'cluster'); the quick cluster tests run regardless",
    )


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "media: deep media-fault sweep; skipped unless --media-faults is given",
    )
    config.addinivalue_line(
        "markers",
        "cluster: deep sharded-cluster sweep; skipped unless --cluster is given",
    )


def pytest_collection_modifyitems(config, items) -> None:
    gates = []
    if not config.getoption("--media-faults"):
        gates.append(("media", pytest.mark.skip(reason="needs --media-faults")))
    if not config.getoption("--cluster"):
        gates.append(("cluster", pytest.mark.skip(reason="needs --cluster")))
    for item in items:
        for marker, skip in gates:
            # match the marker itself, not item.keywords: keywords also
            # contain parent node names, and tests/cluster/'s package
            # name would otherwise skip the whole directory
            if item.get_closest_marker(marker) is not None:
                item.add_marker(skip)


@pytest.fixture(scope="session")
def check_budget(request) -> CheckBudget:
    return BUDGETS[request.config.getoption("--check-budget")]


@pytest.fixture(scope="session")
def nemesis_seeds(request) -> int:
    """How many seeds each nemesis scenario runs under."""
    return request.config.getoption("--nemesis-seeds")


@pytest.fixture(scope="session")
def contention_seeds(request) -> int:
    """How many seeds the contended multi-client battery runs under."""
    return request.config.getoption("--contention-seeds")


@pytest.fixture(scope="session")
def serve_seeds(request) -> int:
    """How many device seeds the serving-layer crash sweeps run under."""
    return request.config.getoption("--serve-seeds")


@pytest.fixture(scope="session")
def media_faults(request) -> bool:
    """Whether the deep media-fault sweeps were opted into."""
    return request.config.getoption("--media-faults")


@pytest.fixture(scope="session")
def cluster_sweeps(request) -> bool:
    """Whether the deep sharded-cluster sweeps were opted into."""
    return request.config.getoption("--cluster")


@pytest.fixture
def assert_engine_crash_consistent(check_budget: CheckBudget):
    """Callable fixture: sweep and fail with minimized repros."""

    def _assert(engine: str, workload: str = "pairs", **overrides: Any) -> None:
        kwargs = {**check_budget.explore_kwargs(), **overrides}
        explorer = CrashExplorer(engine, workload=workload)
        report = explorer.explore(**kwargs)
        if report.ok:
            return
        chunks = []
        for failure in report.failures[:3]:
            minimized = minimize_failure(failure)
            chunks.append(f"{minimized}\n{repro_snippet(minimized)}")
        pytest.fail(
            f"{len(report.failures)} crash-consistency failure(s) for "
            f"{engine} x {workload}:\n\n" + "\n\n".join(chunks)
        )

    return _assert
