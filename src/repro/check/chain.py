"""Crash-state exploration for the replication chain (§5.2–§5.3).

The in-place replica engine (``intent-only``) cannot recover alone — its
intent logs only *identify* incomplete write ranges; repairing them
takes a chain neighbour.  So its crash sweep runs here, over a live
:class:`~repro.replication.chain.ChainCluster`, instead of the
standalone heap explorer.  Two complementary sweeps:

* **Event-boundary interventions** — run the deterministic event
  simulation for exactly ``k`` events, then hit one replica with a
  §5.3 quick reboot (crash + in-place repair + replay) or a §5.2
  fail-stop (remove + re-stitch the chain), for every ``k`` and every
  replica.  This enumerates the protocol's message-loss windows:
  forwards in flight, unacknowledged tails, half-propagated cleanups.
* **Device-op crashes** — arm a power failure on one replica's NVM
  device so it fires *inside* transaction execution mid-chain, leaving
  a RUNNING intent-log slot; quick reboot must then repair exactly the
  logged ranges from the predecessor (Figure 9, case 1).

After an intervention the driver **pumps** the chain: each surviving
replica re-forwards its in-flight window to its successor (the protocol
messages are idempotent — ``applied_seq`` filters replays), modelling
the timeout-driven retransmission a deployment would run, then drains
the simulator.  The oracle then demands:

1. every replica's logical KV state is identical
   (:meth:`ChainCluster.assert_replicas_consistent`);
2. quick reboots lose nothing: the final state equals the undisturbed
   baseline run's;
3. fail-stops lose at most unacked work: every write whose tail ack had
   been delivered to the head before the failure is still present.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import DeviceCrashedError, ReplicationError
from ..nvm.device import CrashPolicy
from ..replication.chain import KAMINO, ChainCluster
from ..replication.recovery import fail_stop, quick_reboot, settle
from .explorer import OP_BUDGET, _sample_points

QUICK_REBOOT = "quick_reboot"
FAIL_STOP = "fail_stop"
COORDINATOR_CRASH = "crash_coordinator"


@dataclass(frozen=True)
class ChainScenario:
    """One chain intervention experiment.

    ``after_events`` pauses the simulation at that event count before
    intervening; ``device_crash_after`` instead arms a device fail-point
    on the replica (counted in its mutating NVM ops) and lets the crash
    interrupt execution wherever it lands.
    """

    mode: str = KAMINO
    intervention: str = QUICK_REBOOT
    replica: int = 1
    after_events: int = 0
    device_crash_after: Optional[int] = None
    policy: CrashPolicy = CrashPolicy.DROP_ALL
    survival: float = 0.5
    double_reboot: bool = False

    def describe(self) -> str:
        parts = [f"mode={self.mode}", f"{self.intervention} r{self.replica}"]
        if self.device_crash_after is not None:
            parts.append(f"device_crash_after={self.device_crash_after}")
        else:
            parts.append(f"after_events={self.after_events}")
        parts.append(f"policy={self.policy.value}")
        if self.double_reboot:
            parts.append("double_reboot")
        return ", ".join(parts)


@dataclass
class ChainFailure:
    scenario: ChainScenario
    message: str

    def __str__(self) -> str:
        return f"{self.scenario.describe()}: {self.message}"


@dataclass
class ChainReport:
    mode: str
    states_explored: int = 0
    failures: List[ChainFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return f"{'chain-' + self.mode:>16} x kv     explored={self.states_explored:<5} {status}"


class ChainCrashExplorer:
    """Sweeps quick-reboot / fail-stop interventions over a small chain."""

    def __init__(self, mode: str = KAMINO, f: int = 2, n_writes: int = 6):
        self.mode = mode
        self.f = f
        self.n_writes = n_writes
        self._baseline: Optional[Dict[int, bytes]] = None

    # -- deterministic cluster construction ----------------------------------

    def _build(self) -> Tuple[ChainCluster, Dict[int, bytes]]:
        """Fresh cluster with the write script submitted; returns it plus
        the seq -> expected-value map (distinct keys, one put each)."""
        cluster = ChainCluster(f=self.f, mode=self.mode, heap_mb=2, value_size=64)
        expected: Dict[int, bytes] = {}
        for i in range(self.n_writes):
            value = bytes([i + 1]) * 16
            cluster.submit_write("put", (i, value), keys=(i,))
            # distinct keys admit in order, so seq = i+1; stores are
            # zero-padded to the fixed record size
            expected[i + 1] = value.ljust(64, b"\x00")
        return cluster, expected

    def baseline(self) -> Dict[int, bytes]:
        """Head KV state of an undisturbed run (the convergence target)."""
        if self._baseline is None:
            cluster, _expected = self._build()
            cluster.drain()
            cluster.assert_replicas_consistent()
            self._baseline = cluster.kv_states()[0]
        return self._baseline

    def count_events(self) -> int:
        cluster, _expected = self._build()
        cluster.run()
        return cluster.sim.processed

    def count_device_ops(self, replica: int) -> int:
        """Mutating NVM ops the replica performs while the chain runs."""
        cluster, _expected = self._build()
        device = cluster.chain[replica].device
        device.schedule_crash(OP_BUDGET, CrashPolicy.DROP_ALL)
        cluster.drain()
        remaining = device.scheduled_crash_remaining()
        device.cancel_scheduled_crash()
        if remaining is None:
            raise RuntimeError("chain run exceeded the fail-point budget")
        return OP_BUDGET - remaining

    # -- retransmission ------------------------------------------------------

    @staticmethod
    def pump(cluster: ChainCluster, rounds: int = 6) -> None:
        """Re-forward stalled in-flight windows until the chain is quiet.

        Delegates to :func:`repro.replication.recovery.settle`, the
        retransmission driver shared with the nemesis runner.
        """
        settle(cluster, rounds=rounds)

    # -- judging -------------------------------------------------------------

    def _judge(
        self,
        cluster: ChainCluster,
        scenario: ChainScenario,
        expected: Dict[int, bytes],
        acked_before: List[int],
        baseline: Dict[int, bytes],
    ) -> Optional[ChainFailure]:
        try:
            cluster.assert_replicas_consistent()
        except AssertionError as exc:
            return ChainFailure(scenario, f"replica divergence: {exc}")
        state = cluster.kv_states()[0]
        if scenario.intervention == QUICK_REBOOT:
            if state != baseline:
                missing = sorted(set(baseline) - set(state))
                return ChainFailure(
                    scenario,
                    f"quick reboot lost committed work (missing keys {missing[:10]})",
                )
            return None
        # fail-stop: anything acked to the client must survive the view change
        for seq in acked_before:
            key = seq - 1
            if state.get(key) != expected[seq]:
                return ChainFailure(
                    scenario,
                    f"acked write seq={seq} (key {key}) lost across fail-stop",
                )
        return None

    # -- one scenario --------------------------------------------------------

    def replay(self, scenario: ChainScenario) -> Optional[ChainFailure]:
        cluster, expected = self._build()
        baseline = self.baseline() if scenario.intervention == QUICK_REBOOT else {}
        if scenario.device_crash_after is not None:
            node = cluster.chain[scenario.replica]
            node.device.schedule_crash(
                scenario.device_crash_after, scenario.policy, scenario.survival
            )
            try:
                cluster.drain()
                node.device.cancel_scheduled_crash()
                return None  # fail-point beyond the run: nothing to check
            except DeviceCrashedError:
                pass
        else:
            cluster.sim.run(max_events=scenario.after_events)
        acked_before = sorted(cluster._tail_acked)
        try:
            if scenario.intervention == QUICK_REBOOT:
                quick_reboot(
                    cluster, scenario.replica, scenario.policy, scenario.survival
                )
                if scenario.double_reboot:
                    # a second power failure before the chain moves on:
                    # repair must be idempotent
                    quick_reboot(
                        cluster, scenario.replica, scenario.policy, scenario.survival
                    )
            else:
                fail_stop(cluster, scenario.replica)
        except Exception as exc:
            return ChainFailure(
                scenario, f"repair raised {type(exc).__name__}: {exc}"
            )
        try:
            self.pump(cluster)
        except Exception as exc:
            return ChainFailure(
                scenario, f"post-repair drain raised {type(exc).__name__}: {exc}"
            )
        return self._judge(cluster, scenario, expected, acked_before, baseline)

    # -- the sweep -----------------------------------------------------------

    def explore(
        self,
        max_points: Optional[int] = None,
        interventions: Tuple[str, ...] = (QUICK_REBOOT, FAIL_STOP),
        replicas: Optional[List[int]] = None,
        device_crashes: bool = True,
        max_device_points: Optional[int] = 6,
        double_reboot: bool = True,
        workers: int = 0,
    ) -> ChainReport:
        """Sweep interventions at every event boundary (sampled by
        ``max_points``) for every replica, plus device-op crash points on
        one mid replica.  ``workers`` fans the scenario replays over a
        process pool; the ordered fold keeps the report byte-identical
        for any worker count."""
        report = ChainReport(mode=self.mode)
        n_events = self.count_events()
        n_replicas = len(self._build()[0].chain)
        if replicas is None:
            replicas = list(range(n_replicas))
        scenarios: List[ChainScenario] = []
        for k in _sample_points(0, n_events, max_points):
            for idx in replicas:
                for intervention in interventions:
                    scenarios.append(
                        ChainScenario(
                            mode=self.mode,
                            intervention=intervention,
                            replica=idx,
                            after_events=k,
                        )
                    )
                    if intervention == QUICK_REBOOT and double_reboot:
                        scenarios.append(
                            ChainScenario(
                                mode=self.mode,
                                intervention=QUICK_REBOOT,
                                replica=idx,
                                after_events=k,
                                double_reboot=True,
                            )
                        )
        if device_crashes and n_replicas > 2:
            mid = 1  # first non-head replica: in-place + intent log
            n_ops = self.count_device_ops(mid)
            for p in _sample_points(0, n_ops - 1, max_device_points):
                scenarios.append(
                    ChainScenario(
                        mode=self.mode,
                        intervention=QUICK_REBOOT,
                        replica=mid,
                        device_crash_after=p,
                    )
                )
        for failure in self._replay_many(scenarios, workers):
            report.states_explored += 1
            if failure is not None:
                report.failures.append(failure)
        return report

    def _replay_many(
        self, scenarios: List[ChainScenario], workers: int
    ) -> List[Optional[ChainFailure]]:
        if workers and workers != 1 and len(scenarios) > 1:
            from ..parallel import fan_out

            baseline = self.baseline()
            jobs = [
                (self.mode, self.f, self.n_writes, baseline, scenario)
                for scenario in scenarios
            ]
            return fan_out(_chain_replay_job, jobs, workers)
        return [self.replay(scenario) for scenario in scenarios]


def _chain_replay_job(job) -> Optional[ChainFailure]:
    """One chain scenario in a worker process (module-level: pickles).

    The undisturbed baseline is computed once in the parent and shipped
    with the job, mirroring the serial explorer's cache.
    """
    mode, f, n_writes, baseline, scenario = job
    explorer = ChainCrashExplorer(mode=mode, f=f, n_writes=n_writes)
    explorer._baseline = baseline
    return explorer.replay(scenario)


@dataclass(frozen=True)
class MigrationScenario:
    """One crash experiment inside an online shard-migration window.

    The sweep pauses a 2-group sharded run at ``after_events`` event
    boundaries *counted from the migration's start* and either
    power-fails the migration coordinator (volatile migration state
    dies; the durable cursor must resume it) or quick-reboots one
    replica of one group while the copy traffic is in flight.
    """

    mode: str = KAMINO
    intervention: str = COORDINATOR_CRASH
    group: int = 0
    replica: int = 0
    after_events: int = 0
    double: bool = False

    def describe(self) -> str:
        parts = [f"mode={self.mode}", f"after_events={self.after_events}"]
        if self.intervention == COORDINATOR_CRASH:
            parts.append("crash_coordinator" + (" x2" if self.double else ""))
        else:
            parts.append(f"{self.intervention} g{self.group}:r{self.replica}")
        return ", ".join(parts)


class MigrationCrashExplorer:
    """Sweeps crash points inside an active shard migration.

    Builds a deterministic two-group :class:`~repro.cluster.sharded.
    ShardedCluster`, preloads it, starts migrating one group-0 shard to
    group 1, and keeps overwriting the same keys on a staggered timer so
    client writes land during every migration phase (copy tap, catch-up,
    hand-off parking, post-flip).  Each scenario replays that script up
    to an event boundary, intervenes, drains, and demands:

    1. every group's replicas converge;
    2. the migration *terminates* (resumed from the durable cursor, not
       wedged) and does not abort;
    3. placement is respected — after the flip + purge, each key lives
       only on its owning group;
    4. **zero lost committed transactions**: every write whose ack was
       delivered before the crash is present in the merged tail state
       with its acked value.
    """

    def __init__(self, mode: str = KAMINO, f: int = 1, n_keys: int = 10,
                 shards_per_group: int = 2):
        self.mode = mode
        self.f = f
        self.n_keys = n_keys
        self.shards_per_group = shards_per_group

    # -- deterministic cluster construction ----------------------------------

    def _build(self):
        """Fresh sharded cluster, preloaded and mid-migration; returns
        it plus the live key -> last-acked-value map (updated by the
        staggered overwrite callbacks as their acks arrive)."""
        # local import: the checker stays importable without the cluster
        from ..cluster.sharded import ShardedCluster

        cluster = ShardedCluster(
            groups=2, shards_per_group=self.shards_per_group,
            f=self.f, mode=self.mode, heap_mb=2, value_size=64,
        )
        acked: Dict[int, bytes] = {}
        for i in range(self.n_keys):
            value = bytes([i + 1]) * 16
            cluster.submit_write("put", (i, value), keys=(i,))
            acked[i] = value.ljust(64, b"\x00")
        cluster.drain()
        shard = cluster.map.shards_of(0)[0]
        cluster.migrate_shard(shard, dst_group=1)
        for i in range(self.n_keys):
            value = bytes([0x41 + i]) * 16

            def fire(key=i, val=value):
                def on_ack(result, _latency, key=key, val=val):
                    if not isinstance(result, ReplicationError):
                        acked[key] = val.ljust(64, b"\x00")

                cluster.submit_write("put", (key, val), keys=(key,),
                                     callback=on_ack)

            cluster.sim.schedule(10_000.0 + i * 30_000.0, fire)
        return cluster, acked

    def count_events(self) -> int:
        """Events in the migration window of an undisturbed run."""
        cluster, _acked = self._build()
        before = cluster.sim.processed
        cluster.drain()
        return cluster.sim.processed - before

    # -- one scenario --------------------------------------------------------

    def replay(self, scenario: MigrationScenario) -> Optional[ChainFailure]:
        cluster, acked = self._build()
        cluster.sim.run(max_events=scenario.after_events)
        try:
            if scenario.intervention == COORDINATOR_CRASH:
                cluster.crash_coordinator()
                if scenario.double:
                    # a second power failure before the resumed copy
                    # moves: recovery must be idempotent
                    cluster.crash_coordinator()
            else:
                quick_reboot(cluster.groups[scenario.group], scenario.replica)
        except Exception as exc:
            return ChainFailure(
                scenario, f"intervention raised {type(exc).__name__}: {exc}"
            )
        try:
            for group in cluster.groups:
                settle(group)
            cluster.drain()
            for group in cluster.groups:
                settle(group)
            cluster.drain()
        except Exception as exc:
            return ChainFailure(
                scenario, f"post-crash drain raised {type(exc).__name__}: {exc}"
            )
        return self._judge(cluster, scenario, acked)

    # -- judging -------------------------------------------------------------

    def _judge(self, cluster, scenario: MigrationScenario,
               acked: Dict[int, bytes]) -> Optional[ChainFailure]:
        try:
            cluster.assert_replicas_consistent()
        except AssertionError as exc:
            return ChainFailure(scenario, f"replica divergence: {exc}")
        if cluster.active_migrations:
            return ChainFailure(
                scenario,
                f"migration wedged (shards {cluster.active_migrations} never "
                "terminated)",
            )
        if cluster.migration_failures:
            return ChainFailure(
                scenario,
                "migration aborted: " + "; ".join(cluster.migration_failures),
            )
        try:
            cluster.assert_placement_respected()
        except AssertionError as exc:
            return ChainFailure(scenario, f"placement violated: {exc}")
        merged = cluster.merged_tail_state()
        for key in sorted(acked):
            if merged.get(key) != acked[key]:
                return ChainFailure(
                    scenario,
                    f"acked write to key {key} lost across the migration crash",
                )
        return None

    # -- the sweep -----------------------------------------------------------

    def explore(
        self,
        max_points: Optional[int] = None,
        double: bool = True,
        reboots: bool = True,
        workers: int = 0,
    ) -> ChainReport:
        """Sweep coordinator crashes (and optionally per-group replica
        quick reboots) at every event boundary of the migration window,
        sampled down by ``max_points``.  ``workers`` fans the replays
        over a process pool with an ordered, byte-identical fold."""
        report = ChainReport(mode=f"{self.mode}-migration")
        n_events = self.count_events()
        scenarios: List[MigrationScenario] = []
        for k in _sample_points(0, n_events, max_points):
            scenarios.append(MigrationScenario(mode=self.mode, after_events=k))
            if double:
                scenarios.append(
                    MigrationScenario(mode=self.mode, after_events=k,
                                      double=True)
                )
            if reboots:
                # the heads carry the copy traffic on both sides
                scenarios.append(
                    MigrationScenario(mode=self.mode, intervention=QUICK_REBOOT,
                                      group=0, replica=0, after_events=k)
                )
                scenarios.append(
                    MigrationScenario(mode=self.mode, intervention=QUICK_REBOOT,
                                      group=1, replica=0, after_events=k)
                )
        results: List[Optional[ChainFailure]]
        if workers and workers != 1 and len(scenarios) > 1:
            from ..parallel import fan_out

            jobs = [
                (self.mode, self.f, self.n_keys, self.shards_per_group, scenario)
                for scenario in scenarios
            ]
            results = fan_out(_migration_replay_job, jobs, workers)
        else:
            results = [self.replay(scenario) for scenario in scenarios]
        for failure in results:
            report.states_explored += 1
            if failure is not None:
                report.failures.append(failure)
        return report


def _migration_replay_job(job) -> Optional[ChainFailure]:
    """One migration-window scenario in a worker process."""
    mode, f, n_keys, shards_per_group, scenario = job
    explorer = MigrationCrashExplorer(
        mode=mode, f=f, n_keys=n_keys, shards_per_group=shards_per_group
    )
    return explorer.replay(scenario)


def _nemesis_job(job):
    """One (scenario, seed) nemesis run in a worker process."""
    scenario, seed, mode, f = job
    from ..faults import run_scenario

    return scenario.name, seed, run_scenario(scenario, seed=seed, mode=mode, f=f)


def explore_nemesis(
    mode: str = KAMINO,
    scenarios=None,
    seeds: int = 5,
    f: int = 2,
    workers: int = 0,
) -> ChainReport:
    """Run the nemesis fault corpus and fold the verdicts into a
    :class:`ChainReport`, so `repro check` surfaces both sweeps with one
    summary format.  ``scenarios=None`` runs the full built-in corpus.
    ``workers`` fans the seeded runs over a process pool; every run is
    seed-deterministic, so the folded report does not depend on the
    worker count."""
    # local import: repro.faults pulls in the replication stack, and the
    # checker must stay importable without it
    from ..faults import CORPUS, run_scenario

    chosen = list(scenarios if scenarios is not None else CORPUS)
    report = ChainReport(mode=f"{mode}-nemesis")
    jobs = [(scenario, seed, mode, f) for scenario in chosen for seed in range(seeds)]
    if workers and workers != 1 and len(jobs) > 1:
        from ..parallel import fan_out

        results = fan_out(_nemesis_job, jobs, workers)
    else:
        results = [
            (scenario.name, seed, run_scenario(scenario, seed=seed, mode=mode, f=f))
            for scenario, seed, _m, _f in jobs
        ]
    for name, seed, result in results:
        report.states_explored += 1
        if not result.ok:
            report.failures.append(
                ChainFailure(
                    ChainScenario(mode=mode),
                    f"nemesis {name} seed={seed}: "
                    + "; ".join(result.problems),
                )
            )
    return report
