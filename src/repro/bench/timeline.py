"""Transaction timelines: regenerating Figures 2, 5 and 6 as output.

The paper's mechanism figures are timelines — *when* each scheme copies,
edits, flushes, commits, and unlocks.  The engines emit named phase
events (``engine.phase_hook``); :class:`TimelineRecorder` timestamps
each with the device's simulated nanoseconds, and :func:`render_timeline`
draws the result as an ASCII Gantt chart whose commit point is marked,
making the "copying moved off the critical path" claim visible directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..nvm.device import NVMDevice
from ..nvm.latency import LatencyModel


@dataclass
class PhaseSpan:
    """One protocol phase: ``[start_ns, end_ns)`` in simulated time."""

    name: str
    start_ns: float
    end_ns: float

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


class TimelineRecorder:
    """Captures an engine's phase events against simulated device time.

    Use as a context manager around exactly one transaction (plus its
    deferred sync, for Kamino)::

        with TimelineRecorder(device, engine) as rec:
            ... one transaction ...
            engine.sync_pending()
        spans = rec.spans
    """

    def __init__(self, device: NVMDevice, engine, model: Optional[LatencyModel] = None):
        self.device = device
        self.engine = engine
        self.model = model or device.model
        self.spans: List[PhaseSpan] = []
        self.commit_ns: Optional[float] = None
        self._t0 = 0.0
        self._last = 0.0

    def _now(self) -> float:
        return self.device.stats.simulated_ns(self.model) - self._t0

    def _on_phase(self, name: str) -> None:
        now = self._now()
        self.spans.append(PhaseSpan(name, self._last, now))
        # commit points: kamino/CoW write an explicit commit record;
        # undo's commit is the durable discard of its log (delete_copy)
        if name in ("commit_record", "delete_copy") and self.commit_ns is None:
            self.commit_ns = now
        self._last = now

    def __enter__(self) -> "TimelineRecorder":
        self._t0 = self.device.stats.simulated_ns(self.model)
        self._last = 0.0
        self.engine.phase_hook = self._on_phase
        return self

    def __exit__(self, *_exc) -> None:
        self.engine.phase_hook = None

    @property
    def total_ns(self) -> float:
        return self.spans[-1].end_ns if self.spans else 0.0


def _engine_has_commit_record(engine) -> bool:
    return engine.name.startswith("kamino") or engine.name == "cow"


def record_one_update(stack, key: int, payload: bytes) -> TimelineRecorder:
    """Run one KV update under a recorder, draining the sync inside it."""
    recorder = TimelineRecorder(stack.device, stack.engine)
    with recorder:
        stack.kv.put(key, payload)
        stack.engine.sync_pending()
    return recorder


def render_timeline(
    label: str,
    recorder: TimelineRecorder,
    width: int = 64,
    scale_ns: Optional[float] = None,
) -> str:
    """ASCII Gantt: one row per phase, a ``|`` at the commit point.

    Pass a common ``scale_ns`` to compare engines on the same axis
    (Figure 5 places the three schemes side by side).
    """
    spans = [s for s in recorder.spans if s.duration_ns > 0]
    if not spans:
        return f"{label}: (no phases recorded)"
    scale = scale_ns or recorder.total_ns
    name_w = max(len(s.name) for s in spans)
    lines = [f"{label}  (total {recorder.total_ns / 1e3:.2f} us"
             + (f", commit at {recorder.commit_ns / 1e3:.2f} us)" if recorder.commit_ns else ")")]
    for span in spans:
        start = int(span.start_ns / scale * width)
        length = max(1, int(span.duration_ns / scale * width))
        row = " " * start + "#" * length
        row = row[:width].ljust(width)
        if recorder.commit_ns is not None:
            cpos = min(width - 1, int(recorder.commit_ns / scale * width))
            if row[cpos] == " ":
                row = row[:cpos] + "|" + row[cpos + 1:]
        lines.append(f"  {span.name:<{name_w}} [{row}] {span.duration_ns / 1e3:6.2f} us")
    return "\n".join(lines)


def critical_path_ns(recorder: TimelineRecorder) -> float:
    """Simulated time until the commit point (what the client waits for)."""
    return recorder.commit_ns if recorder.commit_ns is not None else recorder.total_ns
