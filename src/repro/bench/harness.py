"""Trace-then-replay benchmark harness.

The paper measures wall-clock throughput/latency of a C implementation
on real hardware; a Python reproduction measuring its own wall clock
would benchmark the Python interpreter, not the algorithms.  Instead:

1. **Trace** — run the workload *functionally* (single-threaded,
   deterministic) against the real engine on the simulated device,
   recording per-transaction device costs: critical-path nanoseconds
   (everything before commit returns), asynchronous nanoseconds (backup
   sync work), bytes moved in each phase, intent counts, and read/write
   sets.
2. **Replay** — re-run the trace in virtual time with N closed-loop
   clients, a shared NVM bandwidth channel, a serialized log-management
   server, and lock release times that reflect each engine's scheme
   (at commit for undo/CoW, after backup sync for Kamino).  Dependent
   transactions therefore wait exactly where the paper says they do.

Throughput and latency come out in simulated time, so the *shapes* —
who wins, how the gap scales with threads and write ratio — depend only
on the modelled costs, not on interpreter speed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence

from ..nvm.device import NVMDevice
from ..nvm.latency import NVDIMM, LatencyModel
from ..tx.base import AtomicityEngine, Transaction
from .. import sim as _sim
from ..sim.resources import BandwidthResource, FIFOServer, cost_model_for


@dataclass(frozen=True)
class TxRecord:
    """Costs and footprint of one traced transaction."""

    kind: str
    crit_ns: float
    async_ns: float
    crit_bytes: int
    async_bytes: int
    crit_copy_bytes: int
    n_intents: int
    write_set: FrozenSet[int]
    read_set: FrozenSet[int]


@dataclass
class ReplayResult:
    """Aggregate metrics of one replay run."""

    engine: str
    workload: str
    nthreads: int
    ops: int
    duration_ns: float
    latencies_ns: List[float] = field(repr=False, default_factory=list)
    latencies_by_kind: Dict[str, List[float]] = field(repr=False, default_factory=dict)

    @property
    def throughput_kops(self) -> float:
        """Committed operations per second, in thousands."""
        if self.duration_ns <= 0:
            return 0.0
        return self.ops / self.duration_ns * 1e9 / 1e3

    @property
    def mean_latency_us(self) -> float:
        if not self.latencies_ns:
            return 0.0
        return sum(self.latencies_ns) / len(self.latencies_ns) / 1e3

    def mean_latency_us_of(self, kind: str) -> float:
        """Mean latency of one operation kind (e.g. 'update')."""
        lats = self.latencies_by_kind.get(kind, ())
        if not lats:
            return 0.0
        return sum(lats) / len(lats) / 1e3

    def percentile_latency_us(self, pct: float) -> float:
        if not self.latencies_ns:
            return 0.0
        data = sorted(self.latencies_ns)
        idx = min(len(data) - 1, int(pct / 100.0 * len(data)))
        return data[idx] / 1e3


class TraceCollector:
    """Runs operations functionally and emits :class:`TxRecord` entries."""

    def __init__(self, device: NVMDevice, engine: AtomicityEngine,
                 model: Optional[LatencyModel] = None):
        self.device = device
        self.engine = engine
        self.model = model or device.model
        self.records: List[TxRecord] = []

    def run_op(self, kind: str, fn: Callable[[], None]) -> TxRecord:
        """Execute one operation (one transaction) and record its costs."""
        captured: Dict[str, object] = {}

        def hook(tx: Transaction) -> None:
            captured["write"] = frozenset(tx.write_set)
            captured["read"] = frozenset(tx.read_set)
            captured["intents"] = len(tx.intents)

        self.engine.trace_hook = hook
        try:
            s0 = self.device.stats.snapshot()
            fn()
            s1 = self.device.stats.snapshot()
            # drain exactly this operation's deferred work
            self.engine.sync_pending()
            s2 = self.device.stats.snapshot()
        finally:
            self.engine.trace_hook = None
        crit = s1.delta(s0)
        deferred = s2.delta(s1)
        record = TxRecord(
            kind=kind,
            crit_ns=crit.simulated_ns(self.model),
            async_ns=deferred.simulated_ns(self.model),
            crit_bytes=crit.total_bytes,
            async_bytes=deferred.total_bytes,
            crit_copy_bytes=crit.copy_bytes,
            n_intents=int(captured.get("intents", 0)),
            write_set=captured.get("write", frozenset()),
            read_set=captured.get("read", frozenset()),
        )
        self.records.append(record)
        return record

    def run_ops(self, ops: Iterable, executor: Callable[[object], None],
                kind_of: Callable[[object], str] = lambda op: getattr(op, "kind", "op")):
        """Trace a whole operation stream."""
        for op in ops:
            self.run_op(kind_of(op), lambda: executor(op))
        return self.records


class _Replay:
    """Event-driven replay: closed-loop clients over shared resources.

    Each operation's life cycle is a chain of events on the simulator —
    lock acquisition, serialized log management, bandwidth transfer of
    critical-path bytes, commit, then (Kamino only) the asynchronous
    backup sync whose completion finally releases the write locks.  All
    resource requests therefore arrive in nondecreasing virtual time,
    which FIFO servers require.
    """

    def __init__(self, records, nthreads, engine_name, model, sync_lag_ns):
        from ..sim.events import EventSimulator

        self.sim = EventSimulator()
        self.cost = cost_model_for(engine_name)
        self.bandwidth = BandwidthResource(model.bandwidth_gbps)
        self.serial = FIFOServer("log-mgmt")
        self.ns_per_byte = 1.0 / model.bandwidth_gbps
        self.model_byte_copy_ns = model.byte_copy_ns
        self.sync_lag_ns = sync_lag_ns
        self.queues = [list(records[i::nthreads]) for i in range(nthreads)]
        self.cursor = [0] * nthreads
        self.locked: Dict[int, bool] = {}
        self.waiters: Dict[int, List[int]] = {}
        self.ready_since = [0.0] * nthreads
        self.latencies: List[float] = []
        self.latencies_by_kind: Dict[str, List[float]] = {}
        self.end_time = 0.0
        self.dependent_waits = 0

    def run(self) -> None:
        for client in range(len(self.queues)):
            self.sim.schedule(0.0, self._try_start, client)
        self.sim.run()

    def _current(self, client: int) -> Optional[TxRecord]:
        idx = self.cursor[client]
        queue = self.queues[client]
        return queue[idx] if idx < len(queue) else None

    def _try_start(self, client: int) -> None:
        rec = self._current(client)
        if rec is None:
            return
        for off in rec.write_set | rec.read_set:
            if self.locked.get(off):
                # block on the first conflicting object; retried when it
                # is released (a dependent transaction, paper Figure 6)
                self.waiters.setdefault(off, []).append(client)
                self.dependent_waits += 1
                return
        for off in rec.write_set:
            self.locked[off] = True
        # serialized log management: the per-intent software cost always
        # extends the critical path; the log-arena memcpy's *service*
        # time is already inside crit_ns (it is a device copy), so it
        # contributes only mutual exclusion — queueing delay — here.
        software = self.cost.serial_ns_per_intent * rec.n_intents
        service = software
        if self.cost.serial_includes_copy:
            service += rec.crit_copy_bytes * self.model_byte_copy_ns
        done = self.serial.request(self.sim.now, service)
        queue_delay = done - self.sim.now - service
        self.sim.schedule(queue_delay + software, self._transfer_crit, client)

    def _transfer_crit(self, client: int) -> None:
        rec = self._current(client)
        done = self.bandwidth.transfer(self.sim.now, rec.crit_bytes)
        crit_rest = max(0.0, rec.crit_ns - rec.crit_bytes * self.ns_per_byte)
        self.sim.at(done + crit_rest, self._commit, client)

    def _commit(self, client: int) -> None:
        rec = self._current(client)
        now = self.sim.now
        latency = now - self.ready_since[client]
        self.latencies.append(latency)
        self.latencies_by_kind.setdefault(rec.kind, []).append(latency)
        self.end_time = max(self.end_time, now)
        if self.cost.locks_released_after_sync and rec.async_ns > 0:
            write_set = rec.write_set
            self.sim.schedule(self.sync_lag_ns, self._start_sync, write_set, rec)
        else:
            self._release(rec.write_set)
        self.cursor[client] += 1
        self.ready_since[client] = now
        self._try_start(client)

    def _start_sync(self, write_set, rec: TxRecord) -> None:
        done = self.bandwidth.transfer(self.sim.now, rec.async_bytes)
        rest = max(0.0, rec.async_ns - rec.async_bytes * self.ns_per_byte)
        self.sim.at(done + rest, self._release, write_set)

    def _release(self, write_set) -> None:
        woken: List[int] = []
        for off in write_set:
            self.locked[off] = False
            woken.extend(self.waiters.pop(off, ()))
        for client in woken:
            self.sim.schedule(0.0, self._try_start, client)


def replay(
    records: Sequence[TxRecord],
    nthreads: int,
    engine_name: str,
    workload: str = "",
    model: LatencyModel = NVDIMM,
    sync_lag_ns: float = 0.0,
) -> ReplayResult:
    """Replay a cost trace with ``nthreads`` closed-loop clients.

    ``sync_lag_ns`` adds a fixed scheduling delay before the background
    syncer starts a committed transaction's backup sync (0 = the syncer
    is always ready; larger values stress dependent transactions).
    """
    if nthreads <= 0:
        raise ValueError("nthreads must be positive")
    engine = _Replay(records, nthreads, engine_name, model, sync_lag_ns)
    engine.run()
    return ReplayResult(
        engine=engine_name,
        workload=workload,
        nthreads=nthreads,
        ops=len(engine.latencies),
        duration_ns=engine.end_time,
        latencies_ns=engine.latencies,
        latencies_by_kind=engine.latencies_by_kind,
    )
