"""Benchmark harness facade over the :mod:`repro.runtime` layer.

The paper measures wall-clock throughput/latency of a C implementation
on real hardware; a Python reproduction measuring its own wall clock
would benchmark the Python interpreter, not the algorithms.  All cost
accounting therefore happens in virtual time, inline, through an
:class:`~repro.runtime.context.ExecutionContext`: each transaction's
device-primitive deltas are priced by the latency model at the moment
the bytes move, and multi-client contention comes from the context's
shared FIFO servers (NVM bandwidth, serialized log management).

This module keeps the historical trace/replay names as thin wrappers:

* :class:`TraceCollector` — attaches a context to a device/engine pair
  and records per-transaction costs via
  :meth:`~repro.runtime.context.ExecutionContext.run_tx`.
* :func:`replay` — drives a pre-collected record stream through the
  shared-resource scheduler (:func:`repro.runtime.online.replay_records`).
  New code should prefer :func:`repro.runtime.online.run_online`, which
  executes operations at their virtual start times instead of replaying
  a serially collected trace.

Throughput and latency come out in simulated time, so the *shapes* —
who wins, how the gap scales with threads and write ratio — depend only
on the modelled costs, not on interpreter speed.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from ..nvm.device import NVMDevice
from ..nvm.latency import NVDIMM, LatencyModel
from ..runtime.context import ExecutionContext
from ..runtime.online import replay_records
from ..runtime.records import ReplayResult, TxRecord
from ..tx.base import AtomicityEngine

__all__ = ["ReplayResult", "TraceCollector", "TxRecord", "replay"]


class TraceCollector:
    """Runs operations functionally and emits :class:`TxRecord` entries.

    A compatibility veneer: construction wraps the device/engine pair in
    an :class:`ExecutionContext` (or adopts one) and every ``run_op``
    delegates to :meth:`ExecutionContext.run_tx`.
    """

    def __init__(
        self,
        device: NVMDevice,
        engine: AtomicityEngine,
        model: Optional[LatencyModel] = None,
        ctx: Optional[ExecutionContext] = None,
    ):
        self.ctx = ctx if ctx is not None else ExecutionContext.attach(
            device, engine, model=model
        )
        self.device = self.ctx.device
        self.engine = self.ctx.engine
        self.model = self.ctx.model

    @property
    def records(self) -> List[TxRecord]:
        return self.ctx.records

    def run_op(self, kind: str, fn: Callable[[], None]) -> TxRecord:
        """Execute one operation (one transaction) and record its costs."""
        return self.ctx.run_tx(kind, fn, charge=False)

    def run_ops(self, ops: Iterable, executor: Callable[[object], None],
                kind_of: Callable[[object], str] = lambda op: getattr(op, "kind", "op")):
        """Trace a whole operation stream."""
        return self.ctx.run_ops(ops, executor, kind_of=kind_of, charge=False)


def replay(
    records: Sequence[TxRecord],
    nthreads: int,
    engine_name: str,
    workload: str = "",
    model: LatencyModel = NVDIMM,
    sync_lag_ns: float = 0.0,
) -> ReplayResult:
    """Replay a cost trace with ``nthreads`` closed-loop clients.

    ``sync_lag_ns`` adds a fixed scheduling delay before the background
    syncer starts a committed transaction's backup sync (0 = the syncer
    is always ready; larger values stress dependent transactions).
    """
    return replay_records(
        records,
        nthreads,
        engine_name,
        workload=workload,
        model=model,
        sync_lag_ns=sync_lag_ns,
    )
