"""Benchmark harness: trace collection, virtual-time replay, reporting."""

from .harness import ReplayResult, TraceCollector, TxRecord, replay
from .plot import bar_chart, grouped_bar_chart
from .report import format_table, speedup_note
from .runners import (
    DEFAULT_OPS,
    DEFAULT_RECORDS,
    DEFAULT_VALUE_SIZE,
    Stack,
    build_stack,
    run_tpcc_online,
    run_ycsb_matrix,
    run_ycsb_online,
    trace_tpcc,
    trace_ycsb,
)
from .tco import CostModel, normalized_ops_per_dollar, ops_per_dollar, provisioned_gb

__all__ = [
    "CostModel",
    "DEFAULT_OPS",
    "DEFAULT_RECORDS",
    "DEFAULT_VALUE_SIZE",
    "ReplayResult",
    "Stack",
    "bar_chart",
    "TraceCollector",
    "TxRecord",
    "build_stack",
    "format_table",
    "grouped_bar_chart",
    "normalized_ops_per_dollar",
    "ops_per_dollar",
    "provisioned_gb",
    "replay",
    "run_tpcc_online",
    "run_ycsb_matrix",
    "run_ycsb_online",
    "speedup_note",
    "trace_tpcc",
    "trace_ycsb",
]
