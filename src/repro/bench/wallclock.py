"""Wall-clock benchmark harness: the perf-regression trajectory.

Everything else in :mod:`repro.bench` measures *simulated* time — the
figure pipeline is invariant to how fast the host machine is.  This
module measures the other axis: how long the simulator itself takes to
run those figures, and how much faster the optimized device/engine fast
paths (mask tables, bulk dirty ranges, sync coalescing, elided locks)
are than the naive reference implementation driven through the exact
same code paths.

Each entry in :data:`BENCHMARKS` runs twice — once on the optimized
stack (``NVMDevice``, ``lock_mode="uncontended"``, ``coalesce_sync``
on) and once on the naive one (``ReferenceNVMDevice``, always locked,
per-entry sync) — and reports::

    {"wall_s": ..., "sim_time": ..., "txs": ..., "speedup_vs_naive": ...}

``sim_time`` and ``txs`` double as a self-check: the invariance
contract (docs/INTERNALS.md) says both stacks must produce identical
simulated results, so a drift between the two runs fails the benchmark
rather than silently shipping a wrong speedup.

The emitted JSON files (``BENCH_PR2.json``, ``BENCH_PR3.json``, …) are
committed one per PR, forming a wall-clock trajectory over the repo's
history; CI's ``perf-smoke`` job re-runs the quick profile and fails on
a >25 % regression of any ``speedup_vs_naive`` against the committed
baseline.  See EXPERIMENTS.md for the schema notes.
"""

from __future__ import annotations

import gc
import json
import multiprocessing
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..nvm import backend as nvm_backend
from ..nvm.latency import NVDIMM
from ..nvm.reference import ReferenceNVMDevice
from ..parallel import cpu_count
from .runners import run_tpcc_online, run_ycsb_matrix, run_ycsb_online

#: v2 adds the ``metadata`` block (backend / workers / cpu_count) and
#: the cross-backend comparison refusal in :func:`regression_report`
SCHEMA_VERSION = 2

#: sizes for the committed trajectory point (full) and CI/tests (quick)
FULL_SIZES = {"nrecords": 800, "nops": 1600}
QUICK_SIZES = {"nrecords": 200, "nops": 400}

#: per-engine keyword overrides applied only on the kamino-family
#: engines, which own the coalesce_sync knob
_KAMINO_ENGINES = (
    "kamino-simple",
    "kamino-dynamic",
    "kamino-finegrained",
    "nvtraverse",
)


def _stack_kwargs(naive: bool, engine_name: str) -> dict:
    """Device/engine configuration for one side of a measurement.

    The optimized side constructs whatever device class the active
    backend resolves to (numpy when importable, else pure python — or
    whatever :func:`repro.nvm.backend.set_default_backend` pinned), so
    one process measures the same benchmark under either backend.  The
    naive side is always the reference device: the denominator of
    ``speedup_vs_naive`` must not move with the backend.
    """
    kwargs: dict = (
        {"device_cls": ReferenceNVMDevice, "lock_mode": "locked"}
        if naive
        else {"device_cls": nvm_backend.device_class(None), "lock_mode": "uncontended"}
    )
    if any(engine_name.startswith(k) for k in _KAMINO_ENGINES):
        kwargs["coalesce_sync"] = not naive
    return kwargs


def _bench_fig12_hot_loop(sizes: dict, naive: bool) -> Tuple[float, int]:
    """The fig12 inner loop: kamino-simple, YCSB A, 4 clients, 1008 B."""
    res = run_ycsb_online(
        "kamino-simple",
        "A",
        4,
        nrecords=sizes["nrecords"],
        nops=sizes["nops"],
        value_size=1008,
        coalesce_flushes=True,
        **_stack_kwargs(naive, "kamino-simple"),
    )
    return res.duration_ns, res.ops


def _bench_fig12_matrix(sizes: dict, naive: bool) -> Tuple[float, int]:
    """A reduced fig12 cross-product (two engines x two workloads)."""
    engine_kwargs = {
        name: _stack_kwargs(naive, name) for name in ("undo", "kamino-simple")
    }
    results = run_ycsb_matrix(
        ("undo", "kamino-simple"),
        ("A", "B"),
        nthreads_list=(4,),
        nrecords=sizes["nrecords"],
        nops=sizes["nops"],
        value_size=1008,
        engine_kwargs=engine_kwargs,
        online=True,
        coalesce_flushes=True,
    )
    return (
        sum(r.duration_ns for r in results.values()),
        sum(r.ops for r in results.values()),
    )


def _bench_tpcc_online(sizes: dict, naive: bool) -> Tuple[float, int]:
    res = run_tpcc_online(
        "kamino-simple",
        4,
        nops=max(100, sizes["nops"] // 4),
        **_stack_kwargs(naive, "kamino-simple"),
    )
    return res.duration_ns, res.ops


def _bench_ycsb_dynamic(sizes: dict, naive: bool) -> Tuple[float, int]:
    res = run_ycsb_online(
        "kamino-dynamic",
        "B",
        4,
        nrecords=sizes["nrecords"],
        nops=sizes["nops"],
        value_size=1008,
        alpha=0.5,
        **_stack_kwargs(naive, "kamino-dynamic"),
    )
    return res.duration_ns, res.ops


def _bench_contended_ycsb(sizes: dict, naive: bool) -> Tuple[float, int]:
    """The concurrency-crossover cell: global-lock vs striped engines on
    a hot zipfian YCSB-A key space at 4 simulated clients.

    The key space is deliberately narrow (a quarter of the standard
    record count) so the zipfian head collides across clients; the
    summed simulated duration is the invariance-checked result, and the
    per-engine crossover evidence lands in the trajectory point's
    ``contention`` section (see :mod:`repro.bench.contention`).
    """
    total_ns = 0.0
    total_ops = 0
    for name, kwargs in (
        ("kamino-dynamic", {"alpha": 0.5}),
        ("kamino-finegrained", {"alpha": 0.5, "stripes": 16}),
    ):
        res = run_ycsb_online(
            name,
            "A",
            4,
            nrecords=max(120, sizes["nrecords"] // 4),
            nops=sizes["nops"],
            value_size=256,
            heap_mb=24,
            **kwargs,
            **_stack_kwargs(naive, name),
        )
        total_ns += res.duration_ns
        total_ops += res.ops
    return total_ns, total_ops


def _bench_cluster_ycsb(sizes: dict, naive: bool) -> Tuple[float, int]:
    """Multi-shard YCSB on a 2-group sharded cluster with one online
    migration mid-run (load + route + copy + flip all on the clock)."""
    # local imports: the cluster stack is not needed by the other cells
    from ..cluster import ShardedCluster
    from ..replication import run_clients
    from ..workloads import Op, UPDATE, YCSBWorkload

    cluster = ShardedCluster(
        groups=2, shards_per_group=2, f=1, heap_mb=4, value_size=256, seed=0,
    )
    load = [
        Op(UPDATE, k, bytes([k % 255 + 1]) * 64)
        for k in range(sizes["nrecords"])
    ]
    run_clients(cluster, [load])
    cluster.sim.schedule(200_000.0, lambda: cluster.migrate_shard("hottest"))
    workload = YCSBWorkload("A", sizes["nrecords"], 256, seed=1)
    streams = [list(workload.run_ops(sizes["nops"] // 4)) for _ in range(4)]
    start_ns = cluster.sim.now
    run_clients(cluster, streams)
    cluster.drain()
    cluster.assert_replicas_consistent()
    return cluster.sim.now - start_ns, cluster.committed


def _bench_served_ycsb(sizes: dict, naive: bool) -> Tuple[float, int]:
    """YCSB-A through the real socket path: the asyncio front door over
    a 2-group sharded cluster, one pipelined closed-loop client.

    Wall time is what the trajectory tracks (protocol parse + event
    loop + gateway pump all on the clock); the simulated duration and
    request count are the deterministic invariance-checked result — a
    single connection makes the request order, and with it every
    virtual-time step, exact across repeats.
    """
    # local imports: the serving stack is not needed by the other cells
    import asyncio

    from ..serve import ReproServer, ServeClient
    from ..workloads import READ, YCSBWorkload

    async def drive() -> Tuple[float, int]:
        server = ReproServer(groups=2, shards_per_group=2, f=1, seed=0)
        host, port = await server.start()
        try:
            client = await ServeClient.connect(host, port)
            try:
                load = [
                    ["PUT", k, b"%019d" % k]
                    for k in range(sizes["nrecords"])
                ]
                for i in range(0, len(load), 64):
                    await client.pipeline(load[i:i + 64])
                workload = YCSBWorkload("A", sizes["nrecords"], 64, seed=1)
                cmds = [
                    ["GET", op.key] if op.kind == READ
                    else ["PUT", op.key, op.value]
                    for op in workload.run_ops(sizes["nops"])
                ]
                start_ns = server.cluster.sim.now
                count = 0
                for i in range(0, len(cmds), 32):
                    replies = await client.pipeline(cmds[i:i + 32])
                    count += len(replies)
                return server.cluster.sim.now - start_ns, count
            finally:
                await client.close()
        finally:
            await server.stop()

    return asyncio.run(drive())


def _bench_integrity_tree(sizes: dict, naive: bool) -> Tuple[float, int]:
    """Tree-guarded YCSB-A on kamino-simple: every persisted line streams
    through the checksum sidecar AND the persistent integrity tree.

    Both sides run the optimized device stack; the knob under test is
    the tree's propagation mode — naive = eager (root-to-leaf rehash on
    every persist), optimized = streamed (coalesced batch propagation at
    the pending watermark), so ``speedup_vs_naive`` reports the
    streaming win.  The tree is host-side bookkeeping off the simulated
    clock, so the shared invariance check doubles as proof that guarding
    the pool changes no simulated result.
    """
    from ..runtime.online import run_online
    from .runners import _load_ycsb

    stack, workload = _load_ycsb(
        "kamino-simple", "A", sizes["nrecords"], 1008, 0, NVDIMM,
        coalesce_flushes=True, heap_mb=4,
        **_stack_kwargs(False, "kamino-simple"),
    )
    stack.device.attach_media(seed=0, tree="eager" if naive else "streamed")
    # 8x the op count of the other cells: the tree's per-persist work is
    # the measurand, so the guarded stream must dominate the fixed
    # build-and-bless setup cost (and the eager-vs-streamed delta must
    # clear wall-clock noise on a drifting shared-CPU host)
    ops = list(workload.run_ops(sizes["nops"] * 8))
    res = run_online(
        stack.ctx, ops, lambda op: workload.execute(stack.kv, op), 4,
        workload="A",
    )
    return res.duration_ns, res.ops


BENCHMARKS: Dict[str, Callable[[dict, bool], Tuple[float, int]]] = {
    "fig12_hot_loop": _bench_fig12_hot_loop,
    "fig12_matrix": _bench_fig12_matrix,
    "tpcc_online": _bench_tpcc_online,
    "ycsb_dynamic": _bench_ycsb_dynamic,
    "contended_ycsb": _bench_contended_ycsb,
    "cluster_ycsb": _bench_cluster_ycsb,
    "served_ycsb": _bench_served_ycsb,
    "integrity_tree": _bench_integrity_tree,
}

#: benchmarks with no meaningful naive side: the sharded cluster (and
#: the server fronting it) builds its own device stack internally, so
#: the reference-device swap does not apply — these report wall_s only
#: (no speedup_vs_naive), which :func:`regression_report` treats as
#: informational
NO_NAIVE = frozenset({"cluster_ycsb", "served_ycsb"})


def _run_job(job: Tuple) -> Tuple[str, bool, float, float, int]:
    """One (benchmark, naive?) measurement — module-level so it pickles
    for the multiprocessing fan-out.

    ``repeats > 1`` re-runs the benchmark and keeps the best wall time
    (the standard low-noise estimator); a ``gc.collect()`` precedes each
    timed run so collector debt from earlier work isn't charged to it.
    Simulated results must agree across repeats — same workload, fresh
    device each time — and are asserted to.  The job carries the
    resolved backend name so pool workers pin the same device class the
    parent resolved.
    """
    if len(job) == 5:
        name, quick, naive, repeats, backend = job
    elif len(job) == 4:
        (name, quick, naive, repeats), backend = job, None
    else:
        (name, quick, naive), repeats, backend = job, 1, None
    if backend is not None:
        nvm_backend.set_default_backend(backend)
    sizes = QUICK_SIZES if quick else FULL_SIZES
    fn = BENCHMARKS[name]
    wall = None
    sim_time = txs = None
    for _ in range(max(1, repeats)):
        gc.collect()
        start = time.perf_counter()
        this_sim, this_txs = fn(sizes, naive)
        elapsed = time.perf_counter() - start
        if sim_time is None:
            sim_time, txs = this_sim, this_txs
        else:
            assert (this_sim, this_txs) == (sim_time, txs), (
                f"benchmark '{name}' is not deterministic across repeats"
            )
        if wall is None or elapsed < wall:
            wall = elapsed
    return name, naive, wall, sim_time, txs


def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    workers: int = 0,
    with_naive: bool = True,
    budget_s: Optional[float] = None,
    repeats: int = 1,
    backend: Optional[str] = None,
) -> dict:
    """Run the wall-clock suite; returns the ``BENCH_*.json`` document.

    ``workers > 0`` fans the (benchmark, mode) jobs over a process pool
    — each job builds its own stack, so isolation is free.  ``workers=0``
    runs serially in-process (what the tests use).  ``budget_s`` stops
    launching *new* benchmarks once the wall budget is spent; anything
    already measured is reported, anything skipped is listed.
    ``repeats`` takes the best wall time of N runs per side (noise
    suppression; the committed trajectory points use 3).  ``backend``
    pins the optimized stack's device backend (``"pure"``/``"numpy"``;
    default: auto-detect); the resolved name lands in the document's
    ``metadata`` so trajectory points are only ever compared
    like-for-like.
    """
    chosen = list(names) if names else list(BENCHMARKS)
    unknown = [n for n in chosen if n not in BENCHMARKS]
    if unknown:
        raise KeyError(f"unknown benchmark(s): {', '.join(unknown)}")
    resolved = nvm_backend.resolve_backend(backend)
    jobs: List[Tuple[str, bool, bool, int, str]] = []
    for name in chosen:
        jobs.append((name, quick, False, repeats, resolved))
        if with_naive and name not in NO_NAIVE:
            jobs.append((name, quick, True, repeats, resolved))

    measurements: Dict[str, Dict[bool, Tuple[float, float, int]]] = {}
    skipped: List[str] = []
    start = time.perf_counter()
    prev_default = nvm_backend._default
    try:
        if workers > 0:
            with multiprocessing.Pool(workers) as pool:
                for name, naive, wall, sim_time, txs in pool.imap_unordered(
                    _run_job, jobs
                ):
                    measurements.setdefault(name, {})[naive] = (wall, sim_time, txs)
        else:
            for job in jobs:
                if budget_s is not None and time.perf_counter() - start > budget_s:
                    if job[0] not in measurements:
                        skipped.append(job[0])
                        continue
                    # keep measuring the naive half of anything started, or
                    # its speedup would be meaningless
                name, naive, wall, sim_time, txs = _run_job(job)
                measurements.setdefault(name, {})[naive] = (wall, sim_time, txs)
    finally:
        # the serial path pins the process default inside _run_job;
        # hand the caller's setting back
        nvm_backend.set_default_backend(prev_default)

    benchmarks: Dict[str, dict] = {}
    for name, sides in measurements.items():
        wall, sim_time, txs = sides[False]
        entry = {
            "wall_s": round(wall, 4),
            "sim_time": sim_time,
            "txs": txs,
        }
        if True in sides:
            n_wall, n_sim, n_txs = sides[True]
            if (n_sim, n_txs) != (sim_time, txs):
                raise AssertionError(
                    f"invariance violation in '{name}': optimized stack "
                    f"simulated ({sim_time}, {txs}) but naive simulated "
                    f"({n_sim}, {n_txs}) — see docs/INTERNALS.md"
                )
            entry["naive_wall_s"] = round(n_wall, 4)
            entry["speedup_vs_naive"] = round(n_wall / wall, 3) if wall > 0 else 0.0
        benchmarks[name] = entry
    doc = {
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "sizes": QUICK_SIZES if quick else FULL_SIZES,
        "metadata": {
            "backend": resolved,
            "workers": workers,
            "cpu_count": cpu_count(),
        },
        "benchmarks": benchmarks,
    }
    if skipped:
        doc["skipped"] = sorted(set(skipped))
    return doc


def emit_trajectory_point(
    path: str,
    workers: int = 0,
    repeats: int = 3,
    backend: Optional[str] = None,
) -> dict:
    """Measure and write one committed ``BENCH_PRn.json`` trajectory point.

    The document's headline numbers are the full-size runs; a
    ``quick_benchmarks`` section re-measures at CI sizes so the
    ``perf-smoke`` job compares quick-vs-quick (speedups shift with
    problem size, so cross-profile comparison would mis-gate).  When
    more than one backend is constructible, a ``backend_comparison``
    section re-measures the hot-loop cell under each — the numbers CI's
    numpy-beats-pure gate and EXPERIMENTS.md quote.
    """
    doc = run_benchmarks(quick=False, workers=workers, repeats=repeats, backend=backend)
    quick_doc = run_benchmarks(quick=True, workers=workers, repeats=repeats, backend=backend)
    doc["quick_benchmarks"] = quick_doc["benchmarks"]
    doc["quick_sizes"] = quick_doc["sizes"]
    comparison = backend_comparison(workers=workers, repeats=repeats)
    if len(comparison) > 1:
        doc["backend_comparison"] = comparison
    # the concurrency-crossover evidence: virtual-time (deterministic)
    # multi-client battery, global-lock baseline vs striped challenger
    from .contention import run_contention_sweep

    doc["contention"] = run_contention_sweep().to_dict()
    save(doc, path)
    return doc


def backend_comparison(
    name: str = "fig12_hot_loop", workers: int = 0, repeats: int = 3
) -> Dict[str, dict]:
    """Quick-profile wall time of one benchmark under every backend this
    interpreter can construct (optimized side only — the naive
    denominator is backend-independent by construction)."""
    out: Dict[str, dict] = {}
    for candidate in nvm_backend.available_backends():
        doc = run_benchmarks(
            names=[name],
            quick=True,
            workers=workers,
            with_naive=False,
            repeats=repeats,
            backend=candidate,
        )
        out[candidate] = {name: doc["benchmarks"][name]}
    return out


def _comparable_sections(current: dict, baseline: dict) -> Tuple[dict, dict]:
    """The (current, baseline) sections sharing one size profile.

    Speedups shift with problem size, so a quick document is only ever
    compared against quick cells — whichever side is the full-profile
    trajectory point contributes its ``quick_benchmarks`` section.
    """
    cur, base = current.get("benchmarks", {}), baseline.get("benchmarks", {})
    if current.get("quick") and not baseline.get("quick"):
        base = baseline.get("quick_benchmarks", base)
    elif baseline.get("quick") and not current.get("quick"):
        cur = current.get("quick_benchmarks", cur)
    return cur, base


def regression_report(current: dict, baseline: dict, tolerance: float = 0.25) -> List[str]:
    """Compare two BENCH documents; returns human-readable regressions.

    A benchmark regresses when its ``speedup_vs_naive`` drops more than
    ``tolerance`` (fractionally) below the baseline's.  Speedup — not
    raw wall seconds — is compared so the check is stable across host
    machines: both sides of the ratio ran on the same box.  When the
    two documents were measured at different size profiles, the
    full-profile side's ``quick_benchmarks`` section is compared
    instead (same-profile comparison; speedups shift with size).
    """
    problems: List[str] = []
    cur_backend = current.get("metadata", {}).get("backend")
    base_backend = baseline.get("metadata", {}).get("backend")
    if cur_backend and base_backend and cur_backend != base_backend:
        # pure-vs-numpy wall clocks are not comparable: refuse rather
        # than report a bogus regression.  Schema-v1 documents carry no
        # metadata and keep comparing leniently.
        return [
            f"backend mismatch: current document measured on "
            f"'{cur_backend}' but baseline on '{base_backend}' — "
            f"cross-backend comparison refused; re-measure with "
            f"backend='{base_backend}'"
        ]
    current_cells, baseline_cells = _comparable_sections(current, baseline)
    for name, base in baseline_cells.items():
        base_speedup = base.get("speedup_vs_naive")
        if base_speedup is None:
            continue
        cur = current_cells.get(name)
        if cur is None:
            problems.append(f"{name}: present in baseline but not re-measured")
            continue
        cur_speedup = cur.get("speedup_vs_naive")
        if cur_speedup is None:
            problems.append(f"{name}: current run has no naive comparison")
            continue
        floor = base_speedup * (1.0 - tolerance)
        if cur_speedup < floor:
            problems.append(
                f"{name}: speedup_vs_naive {cur_speedup:.2f}x fell below "
                f"{floor:.2f}x (baseline {base_speedup:.2f}x - {tolerance:.0%})"
            )
    return problems


def save(doc: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)
