"""Contended multi-client zipfian YCSB battery.

The concurrent-engine family exists for exactly one claim: under real
contention, per-object striped locking beats serializing every
transaction through global lock-table state.  This module is the driver
that makes the claim measurable and regression-testable:

* :func:`run_contended_cell` — one (engine × client-count) cell of a
  zipfian YCSB-A run through the online scheduler
  (:mod:`repro.runtime.online`), returning scheduler metrics
  (duration, throughput, latency, dependent waits) *and* the engine's
  lock-table counters side by side.
* :func:`run_contention_sweep` — the full battery over client counts,
  with the **crossover** computed: the smallest client count at which
  the challenger (`kamino-finegrained`) strictly beats the baseline
  (`kamino-dynamic`, same α, global lock table) on wall duration.

The cells deliberately shrink the key space (``nrecords`` defaults to
a few hundred) so the zipfian hot set actually collides: contention is
the subject, not an accident.  Everything is virtual-time
deterministic — the same seed gives bit-identical cells on every
backend, which is what lets CI gate on the crossover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..nvm.latency import NVDIMM, LatencyModel
from ..runtime.online import VirtualClients, _InlineSource
from .runners import _load_ycsb

#: contention-battery defaults: a hot key space a few hundred wide makes
#: the zipfian head collide across clients without inflating runtimes
CONTENTION_RECORDS = 240
CONTENTION_OPS = 720
CONTENTION_VALUE_SIZE = 256

DEFAULT_BASELINE = "kamino-dynamic"
DEFAULT_CHALLENGER = "kamino-finegrained"
DEFAULT_CLIENTS: Tuple[int, ...] = (1, 2, 4, 8)


@dataclass
class ContentionCell:
    """One engine × client-count measurement."""

    engine: str
    nclients: int
    ops: int
    duration_ns: float
    mean_latency_ns: float
    max_latency_ns: float
    dependent_waits: int
    lock_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput_kops(self) -> float:
        """Thousands of committed ops per virtual millisecond × 1000
        (i.e. ops per virtual microsecond, scaled): ops / duration_ms."""
        if self.duration_ns <= 0:
            return 0.0
        return self.ops / (self.duration_ns / 1e6)

    def to_dict(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "nclients": self.nclients,
            "ops": self.ops,
            "duration_ns": self.duration_ns,
            "throughput_kops": self.throughput_kops,
            "mean_latency_ns": self.mean_latency_ns,
            "max_latency_ns": self.max_latency_ns,
            "dependent_waits": self.dependent_waits,
            "lock_stats": dict(self.lock_stats),
        }


def _engine_lock_stats(engine) -> Dict[str, int]:
    """Lock-table counters for any engine exposing a ``locks`` table."""
    locks = getattr(engine, "locks", None)
    stats = getattr(locks, "stats", None)
    if stats is None:
        return {}
    out = {
        "write_acquires": stats.write_acquires,
        "read_acquires": stats.read_acquires,
        "dependent_waits": stats.dependent_waits,
        "conflict_waits": stats.conflict_waits,
        "on_demand_syncs": stats.on_demand_syncs,
    }
    snapshot = getattr(locks, "stats_snapshot", None)
    if snapshot is not None:
        snap = snapshot()
        out["stripes"] = snap.stripes
        out["hottest_stripe_acquires"] = snap.hottest_stripe_acquires
    return out


def run_contended_cell(
    engine_name: str,
    nclients: int,
    workload_name: str = "A",
    nrecords: int = CONTENTION_RECORDS,
    nops: int = CONTENTION_OPS,
    value_size: int = CONTENTION_VALUE_SIZE,
    seed: int = 0,
    model: LatencyModel = NVDIMM,
    sync_lag_ns: float = 0.0,
    heap_mb: int = 24,
    **engine_kwargs,
) -> ContentionCell:
    """Run one zipfian cell online and report scheduler + lock metrics.

    Uses the scheduler objects directly (rather than
    :func:`repro.bench.runners.run_ycsb_online`) so the
    ``dependent_waits`` counter and the engine's lock table stay
    reachable after the run.
    """
    stack, workload = _load_ycsb(
        engine_name,
        workload_name,
        nrecords,
        value_size,
        seed,
        model,
        heap_mb=heap_mb,
        **engine_kwargs,
    )
    ops = list(workload.run_ops(nops))
    streams = [ops[i::nclients] for i in range(nclients)]
    source = _InlineSource(
        stack.ctx,
        streams,
        lambda op: workload.execute(stack.kv, op),
        lambda op: op.kind,
    )
    clients = VirtualClients(
        source,
        nclients,
        stack.ctx.engine_name,
        stack.ctx.model,
        sync_lag_ns,
        resources=stack.ctx.resources,
        events=stack.ctx.events,
    )
    clients.run()
    latencies = clients.latencies
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    return ContentionCell(
        engine=engine_name,
        nclients=nclients,
        ops=len(latencies),
        duration_ns=clients.end_time,
        mean_latency_ns=mean,
        max_latency_ns=max(latencies) if latencies else 0.0,
        dependent_waits=clients.dependent_waits,
        lock_stats=_engine_lock_stats(stack.engine),
    )


@dataclass
class ContentionSweep:
    """The full battery plus the computed crossover."""

    workload: str
    nrecords: int
    nops: int
    seed: int
    cells: List[ContentionCell]
    baseline: str
    challenger: str

    def cell(self, engine: str, nclients: int) -> Optional[ContentionCell]:
        for c in self.cells:
            if c.engine == engine and c.nclients == nclients:
                return c
        return None

    def crossover_clients(self) -> Optional[int]:
        """Smallest client count where the challenger strictly beats the
        baseline on duration; ``None`` if it never does."""
        counts = sorted({c.nclients for c in self.cells})
        for n in counts:
            base = self.cell(self.baseline, n)
            chal = self.cell(self.challenger, n)
            if base is None or chal is None:
                continue
            if chal.duration_ns < base.duration_ns:
                return n
        return None

    def speedup_at(self, nclients: int) -> Optional[float]:
        base = self.cell(self.baseline, nclients)
        chal = self.cell(self.challenger, nclients)
        if base is None or chal is None or chal.duration_ns <= 0:
            return None
        return base.duration_ns / chal.duration_ns

    def to_dict(self) -> Dict[str, object]:
        max_clients = max((c.nclients for c in self.cells), default=0)
        return {
            "workload": self.workload,
            "nrecords": self.nrecords,
            "nops": self.nops,
            "seed": self.seed,
            "baseline": self.baseline,
            "challenger": self.challenger,
            "cells": [c.to_dict() for c in self.cells],
            "crossover_clients": self.crossover_clients(),
            "speedup_at_max_clients": self.speedup_at(max_clients),
        }


def run_contention_sweep(
    engines: Sequence[str] = (DEFAULT_BASELINE, DEFAULT_CHALLENGER),
    client_counts: Sequence[int] = DEFAULT_CLIENTS,
    workload_name: str = "A",
    nrecords: int = CONTENTION_RECORDS,
    nops: int = CONTENTION_OPS,
    value_size: int = CONTENTION_VALUE_SIZE,
    seed: int = 0,
    model: LatencyModel = NVDIMM,
    sync_lag_ns: float = 0.0,
    baseline: str = DEFAULT_BASELINE,
    challenger: str = DEFAULT_CHALLENGER,
    engine_kwargs: Optional[Dict[str, dict]] = None,
) -> ContentionSweep:
    """Sweep the battery: every engine × client count, one fresh stack each."""
    engine_kwargs = engine_kwargs or {}
    cells: List[ContentionCell] = []
    for engine_name in engines:
        for nclients in client_counts:
            cells.append(
                run_contended_cell(
                    engine_name,
                    nclients,
                    workload_name=workload_name,
                    nrecords=nrecords,
                    nops=nops,
                    value_size=value_size,
                    seed=seed,
                    model=model,
                    sync_lag_ns=sync_lag_ns,
                    **engine_kwargs.get(engine_name, {}),
                )
            )
    return ContentionSweep(
        workload=workload_name,
        nrecords=nrecords,
        nops=nops,
        seed=seed,
        cells=cells,
        baseline=baseline,
        challenger=challenger,
    )
