"""Shared setup glue for the benchmark scripts.

Builds the full execution context for a named engine, loads a workload,
and runs its operation stream — the part every figure's benchmark has
in common.  Every stack is an
:class:`~repro.runtime.context.ExecutionContext` (device + latency model
+ clock + shared resource servers), so single-client tracing and
multi-client online simulation use the same objects.  Scaled defaults
keep each figure's regeneration in the tens of seconds while preserving
the paper's ratios: record count shrinks from 10 M to a few thousand,
but value size, operation mixes, key skew, and data-structure shapes
are the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..nvm.latency import NVDIMM, LatencyModel
from ..runtime.context import ExecutionContext
from ..runtime.online import run_online
from ..runtime.records import ReplayResult, TxRecord
from ..workloads import TPCCLite, YCSBWorkload
from .harness import replay

#: scaled-down benchmark defaults (paper: 10 M records, 1 KB values)
DEFAULT_RECORDS = 2000
DEFAULT_OPS = 4000
DEFAULT_VALUE_SIZE = 1024


@dataclass
class Stack:
    """One engine's full stack — a view over its execution context."""

    ctx: ExecutionContext

    @property
    def device(self):
        return self.ctx.device

    @property
    def heap(self):
        return self.ctx.heap

    @property
    def kv(self):
        return self.ctx.kv

    @property
    def engine(self):
        return self.ctx.engine

    @property
    def engine_name(self) -> str:
        return self.ctx.engine_name


def build_stack(
    engine_name: str,
    value_size: int = DEFAULT_VALUE_SIZE,
    heap_mb: int = 48,
    model: LatencyModel = NVDIMM,
    fanout: int = 32,
    coalesce_flushes: bool = False,
    **engine_kwargs,
) -> Stack:
    """Device + pool + heap + KV store for ``engine_name``.

    The pool is sized for the worst-case engine footprint (full mirror +
    logs), so every engine sees an identically sized heap.
    """
    ctx = ExecutionContext.create(
        engine_name,
        value_size=value_size,
        heap_mb=heap_mb,
        model=model,
        fanout=fanout,
        coalesce_flushes=coalesce_flushes,
        **engine_kwargs,
    )
    return Stack(ctx=ctx)


def _load_ycsb(
    engine_name: str,
    workload_name: str,
    nrecords: int,
    value_size: int,
    seed: int,
    model: LatencyModel,
    coalesce_flushes: bool = False,
    heap_mb: int = 48,
    **engine_kwargs,
) -> Tuple[Stack, YCSBWorkload]:
    """Build a stack and load a YCSB table into it (accounting zeroed)."""
    stack = build_stack(
        engine_name,
        value_size=value_size,
        heap_mb=heap_mb,
        model=model,
        coalesce_flushes=coalesce_flushes,
        **engine_kwargs,
    )
    workload = YCSBWorkload(workload_name, nrecords, value_size, seed=seed)
    workload.load(stack.kv)
    stack.ctx.reset()
    return stack, workload


def trace_ycsb(
    engine_name: str,
    workload_name: str,
    nrecords: int = DEFAULT_RECORDS,
    nops: int = DEFAULT_OPS,
    value_size: int = DEFAULT_VALUE_SIZE,
    seed: int = 0,
    model: LatencyModel = NVDIMM,
    **engine_kwargs,
) -> List[TxRecord]:
    """Load + trace one YCSB workload on one engine (single client)."""
    stack, workload = _load_ycsb(
        engine_name, workload_name, nrecords, value_size, seed, model, **engine_kwargs
    )
    stack.ctx.run_ops(
        workload.run_ops(nops),
        lambda op: workload.execute(stack.kv, op),
        charge=False,
    )
    return stack.ctx.records


def run_ycsb_online(
    engine_name: str,
    workload_name: str,
    nthreads: int,
    nrecords: int = DEFAULT_RECORDS,
    nops: int = DEFAULT_OPS,
    value_size: int = DEFAULT_VALUE_SIZE,
    seed: int = 0,
    model: LatencyModel = NVDIMM,
    coalesce_flushes: bool = False,
    sync_lag_ns: float = 0.0,
    heap_mb: int = 48,
    **engine_kwargs,
) -> ReplayResult:
    """Run one YCSB workload online under ``nthreads`` virtual clients.

    Each operation executes functionally at the virtual time its client
    reaches it, charging the context's shared bandwidth/log-management
    servers inline — no trace pass, exact dependent-transaction timing.
    """
    stack, workload = _load_ycsb(
        engine_name,
        workload_name,
        nrecords,
        value_size,
        seed,
        model,
        coalesce_flushes=coalesce_flushes,
        heap_mb=heap_mb,
        **engine_kwargs,
    )
    ops = list(workload.run_ops(nops))
    return run_online(
        stack.ctx,
        ops,
        lambda op: workload.execute(stack.kv, op),
        nthreads,
        workload=workload_name,
        sync_lag_ns=sync_lag_ns,
    )


def trace_tpcc(
    engine_name: str,
    nops: int = 600,
    seed: int = 0,
    model: LatencyModel = NVDIMM,
    **engine_kwargs,
) -> List[TxRecord]:
    """Load + trace the TPC-C-lite mix on one engine."""
    stack = build_stack(engine_name, value_size=64, heap_mb=24, model=model, **engine_kwargs)
    tpcc = TPCCLite(seed=seed)
    tpcc.load(stack.kv)
    stack.ctx.reset()
    names = []

    def one(_ignored) -> None:
        names.append(tpcc.run_op(stack.kv))

    stack.ctx.run_ops(range(nops), one, kind_of=lambda _i: "tpcc", charge=False)
    return stack.ctx.records


def run_tpcc_online(
    engine_name: str,
    nthreads: int,
    nops: int = 600,
    seed: int = 0,
    model: LatencyModel = NVDIMM,
    coalesce_flushes: bool = False,
    sync_lag_ns: float = 0.0,
    **engine_kwargs,
) -> ReplayResult:
    """Run the TPC-C-lite mix online under ``nthreads`` virtual clients."""
    stack = build_stack(
        engine_name,
        value_size=64,
        heap_mb=24,
        model=model,
        coalesce_flushes=coalesce_flushes,
        **engine_kwargs,
    )
    tpcc = TPCCLite(seed=seed)
    tpcc.load(stack.kv)
    stack.ctx.reset()

    def one(_ignored) -> None:
        tpcc.run_op(stack.kv)

    return run_online(
        stack.ctx,
        range(nops),
        one,
        nthreads,
        kind_of=lambda _i: "tpcc",
        workload="tpcc",
        sync_lag_ns=sync_lag_ns,
    )


def run_ycsb_matrix(
    engines: Sequence[str],
    workloads: Sequence[str],
    nthreads_list: Sequence[int] = (4,),
    nrecords: int = DEFAULT_RECORDS,
    nops: int = DEFAULT_OPS,
    value_size: int = DEFAULT_VALUE_SIZE,
    model: LatencyModel = NVDIMM,
    engine_kwargs: Optional[Dict[str, dict]] = None,
    online: bool = False,
    coalesce_flushes: bool = False,
) -> Dict[Tuple[str, str, int], ReplayResult]:
    """The full cross product used by Figures 12–15.

    With ``online=False`` (the historical mode) each (engine, workload)
    pair is traced once and the trace replayed per thread count — cheap,
    and exact for independent transactions.  With ``online=True`` each
    cell runs a fresh online simulation, so dependent transactions
    execute at their true virtual times and the flush coalescer
    (``coalesce_flushes``) can be engaged.
    """
    engine_kwargs = engine_kwargs or {}
    results: Dict[Tuple[str, str, int], ReplayResult] = {}
    for engine_name in engines:
        for workload_name in workloads:
            if online:
                for nthreads in nthreads_list:
                    results[(engine_name, workload_name, nthreads)] = run_ycsb_online(
                        engine_name,
                        workload_name,
                        nthreads,
                        nrecords=nrecords,
                        nops=nops,
                        value_size=value_size,
                        model=model,
                        coalesce_flushes=coalesce_flushes,
                        **engine_kwargs.get(engine_name, {}),
                    )
                continue
            records = trace_ycsb(
                engine_name,
                workload_name,
                nrecords=nrecords,
                nops=nops,
                value_size=value_size,
                model=model,
                **engine_kwargs.get(engine_name, {}),
            )
            for nthreads in nthreads_list:
                results[(engine_name, workload_name, nthreads)] = replay(
                    records,
                    nthreads,
                    engine_name,
                    workload=workload_name,
                    model=model,
                )
    return results
