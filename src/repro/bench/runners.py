"""Shared setup glue for the benchmark scripts.

Builds a (device, heap, KVStore) stack for a named engine, loads a
workload, and traces its operation stream — the part every figure's
benchmark has in common.  Scaled defaults keep each figure's regeneration
in the tens of seconds while preserving the paper's ratios: record count
shrinks from 10 M to a few thousand, but value size, operation mixes,
key skew, and data-structure shapes are the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..heap import PersistentHeap
from ..kvstore import KVStore
from ..nvm.device import NVMDevice
from ..nvm.latency import NVDIMM, LatencyModel
from ..nvm.pool import PmemPool
from ..tx import make_engine
from ..workloads import TPCCLite, YCSBWorkload
from .harness import ReplayResult, TraceCollector, TxRecord, replay

#: scaled-down benchmark defaults (paper: 10 M records, 1 KB values)
DEFAULT_RECORDS = 2000
DEFAULT_OPS = 4000
DEFAULT_VALUE_SIZE = 1024


@dataclass
class Stack:
    """One engine's full stack, ready for tracing."""

    device: NVMDevice
    heap: PersistentHeap
    kv: KVStore
    engine_name: str

    @property
    def engine(self):
        return self.heap.engine


def build_stack(
    engine_name: str,
    value_size: int = DEFAULT_VALUE_SIZE,
    heap_mb: int = 48,
    model: LatencyModel = NVDIMM,
    fanout: int = 32,
    **engine_kwargs,
) -> Stack:
    """Device + pool + heap + KV store for ``engine_name``.

    The pool is sized for the worst-case engine footprint (full mirror +
    logs), so every engine sees an identically sized heap.
    """
    heap_bytes = heap_mb << 20
    pool_bytes = heap_bytes * 2 + (32 << 20)
    device = NVMDevice(pool_bytes, model=model, seed=0)
    pool = PmemPool.create(device)
    engine = make_engine(engine_name, **engine_kwargs)
    heap = PersistentHeap.create(pool, engine, heap_size=heap_bytes)
    kv = KVStore.create(heap, value_size=value_size, fanout=fanout)
    return Stack(device=device, heap=heap, kv=kv, engine_name=engine_name)


def trace_ycsb(
    engine_name: str,
    workload_name: str,
    nrecords: int = DEFAULT_RECORDS,
    nops: int = DEFAULT_OPS,
    value_size: int = DEFAULT_VALUE_SIZE,
    seed: int = 0,
    model: LatencyModel = NVDIMM,
    **engine_kwargs,
) -> List[TxRecord]:
    """Load + trace one YCSB workload on one engine."""
    stack = build_stack(engine_name, value_size=value_size, model=model, **engine_kwargs)
    workload = YCSBWorkload(workload_name, nrecords, value_size, seed=seed)
    workload.load(stack.kv)
    stack.device.stats.reset()
    collector = TraceCollector(stack.device, stack.engine, model)
    collector.run_ops(
        workload.run_ops(nops), lambda op: workload.execute(stack.kv, op)
    )
    return collector.records


def trace_tpcc(
    engine_name: str,
    nops: int = 600,
    seed: int = 0,
    model: LatencyModel = NVDIMM,
    **engine_kwargs,
) -> List[TxRecord]:
    """Load + trace the TPC-C-lite mix on one engine."""
    stack = build_stack(engine_name, value_size=64, heap_mb=24, model=model, **engine_kwargs)
    tpcc = TPCCLite(seed=seed)
    tpcc.load(stack.kv)
    stack.device.stats.reset()
    collector = TraceCollector(stack.device, stack.engine, model)
    names = []

    def one(_ignored) -> None:
        names.append(tpcc.run_op(stack.kv))

    collector.run_ops(range(nops), one, kind_of=lambda _i: "tpcc")
    return collector.records


def run_ycsb_matrix(
    engines: Sequence[str],
    workloads: Sequence[str],
    nthreads_list: Sequence[int] = (4,),
    nrecords: int = DEFAULT_RECORDS,
    nops: int = DEFAULT_OPS,
    value_size: int = DEFAULT_VALUE_SIZE,
    model: LatencyModel = NVDIMM,
    engine_kwargs: Optional[Dict[str, dict]] = None,
) -> Dict[Tuple[str, str, int], ReplayResult]:
    """The full cross product used by Figures 12–15: trace once per
    (engine, workload), replay once per thread count."""
    engine_kwargs = engine_kwargs or {}
    results: Dict[Tuple[str, str, int], ReplayResult] = {}
    for engine_name in engines:
        for workload_name in workloads:
            records = trace_ycsb(
                engine_name,
                workload_name,
                nrecords=nrecords,
                nops=nops,
                value_size=value_size,
                model=model,
                **engine_kwargs.get(engine_name, {}),
            )
            for nthreads in nthreads_list:
                results[(engine_name, workload_name, nthreads)] = replay(
                    records,
                    nthreads,
                    engine_name,
                    workload=workload_name,
                    model=model,
                )
    return results
