"""Total-cost-of-ownership model for Figure 16 (ops/sec/dollar).

The paper prices Azure A9-class machines via the AWS TCO calculator and
normalises throughput per dollar across backup configurations.  We keep
the same structure: a machine has a base cost plus an NVM cost
proportional to provisioned capacity, and each scheme provisions a
different multiple of the data size:

=====================  =======================
Scheme                 Provisioned NVM
=====================  =======================
undo-logging           1 × dataSize (+ log)
Kamino-Tx-Dynamic(α)   (1+α) × dataSize
Kamino-Tx-Simple       2 × dataSize
=====================  =======================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class CostModel:
    """Machine pricing: 3-year TCO split into base and per-GB NVM cost.

    Defaults approximate the paper's A9-class machine (112 GB, ~half the
    machine cost attributable to memory).
    """

    base_dollars: float = 4000.0
    dollars_per_gb: float = 60.0

    def machine_cost(self, nvm_gb: float) -> float:
        return self.base_dollars + self.dollars_per_gb * nvm_gb


def provisioned_gb(data_gb: float, scheme: str, alpha: float = 0.0) -> float:
    """NVM capacity each scheme must provision for ``data_gb`` of data."""
    if scheme == "undo" or scheme == "nolog" or scheme == "cow":
        return data_gb
    if scheme == "kamino-simple":
        return 2.0 * data_gb
    if scheme.startswith("kamino-dynamic"):
        return (1.0 + alpha) * data_gb
    raise ValueError(f"unknown scheme '{scheme}'")


def ops_per_dollar(
    throughput_kops: float, data_gb: float, scheme: str, alpha: float = 0.0,
    cost_model: CostModel = CostModel(),
) -> float:
    """Throughput per TCO dollar (the Figure 16 metric, unnormalised)."""
    gb = provisioned_gb(data_gb, scheme, alpha)
    return throughput_kops * 1e3 / cost_model.machine_cost(gb)


def normalized_ops_per_dollar(
    series: Dict[str, float], data_gb: float,
    alphas: Dict[str, float], base: str = "undo",
    cost_model: CostModel = CostModel(),
) -> Dict[str, float]:
    """Normalise a {scheme: throughput_kops} series to ``base`` = 1.0."""
    raw = {
        name: ops_per_dollar(kops, data_gb, name, alphas.get(name, 0.0), cost_model)
        for name, kops in series.items()
    }
    denom = raw[base]
    return {name: value / denom for name, value in raw.items()}
