"""Fixed-width table rendering so benchmark output mirrors the paper.

Every benchmark prints one table per figure with the same rows/series
the paper reports, and EXPERIMENTS.md records paper-vs-measured from
exactly this output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence],
    note: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table with a title rule."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} ==",
             " | ".join(c.ljust(w) for c, w in zip(columns, widths)),
             sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell >= 100:
            return f"{cell:.0f}"
        if cell >= 10:
            return f"{cell:.1f}"
        return f"{cell:.2f}"
    return str(cell)


def speedup_note(base: str, series: Dict[str, float]) -> str:
    """'X is N.NNx over Y' annotations for the headline comparisons."""
    if base not in series or series[base] == 0:
        return ""
    parts = []
    for name, value in series.items():
        if name == base:
            continue
        parts.append(f"{name} = {value / series[base]:.2f}x of {base}")
    return "; ".join(parts)
