"""ASCII bar charts so regenerated figures *look* like figures.

The benchmark scripts print paper-style tables for EXPERIMENTS.md; their
standalone mode additionally renders the same data as horizontal bar
charts, which makes who-wins-where legible at a glance in a terminal.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

_FULL = "█"
_PART = " ▏▎▍▌▋▊▉"


def _bar(value: float, vmax: float, width: int) -> str:
    if vmax <= 0:
        return ""
    cells = value / vmax * width
    whole = int(cells)
    frac = int((cells - whole) * 8)
    bar = _FULL * whole
    if frac and whole < width:
        bar += _PART[frac]
    return bar


def bar_chart(
    title: str,
    series: Mapping[str, float],
    width: int = 44,
    unit: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """One horizontal bar per (label, value), scaled to the maximum."""
    if not series:
        return f"{title}\n(no data)"
    vmax = max(series.values())
    label_w = max(len(k) for k in series)
    lines = [title]
    for label, value in series.items():
        lines.append(
            f"  {label:<{label_w}} {_bar(value, vmax, width):<{width}} "
            f"{fmt.format(value)}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    groups: Mapping[str, Mapping[str, float]],
    width: int = 44,
    unit: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """Figure-12-style grouped bars: one block per group, one bar per
    series within it, all sharing a common scale."""
    values = [v for g in groups.values() for v in g.values()]
    if not values:
        return f"{title}\n(no data)"
    vmax = max(values)
    series_w = max(len(s) for g in groups.values() for s in g)
    lines = [title]
    for group, series in groups.items():
        lines.append(f" {group}")
        for name, value in series.items():
            lines.append(
                f"  {name:<{series_w}} {_bar(value, vmax, width):<{width}} "
                f"{fmt.format(value)}{unit}"
            )
    return "\n".join(lines)
